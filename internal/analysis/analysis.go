// Package analysis is a self-contained reimplementation of the subset of
// golang.org/x/tools/go/analysis that mpgraph-vet needs, built on the
// standard library only (go/ast, go/types, go/importer). The repository is
// dependency-free by policy, so rather than vendoring x/tools the suite
// mirrors its Analyzer/Pass/Diagnostic API closely enough that the fourteen
// MPGraph analyzers could be ported to the real framework by changing
// imports.
//
// Two project-specific extensions:
//
//   - Analyzer.Match lets the driver scope an analyzer to a subset of
//     package paths (x/tools expresses this inside each analyzer; keeping it
//     in the driver lets analysistest fixtures use short package names).
//   - Suppression directives: a trailing comment of the form
//     "//mpgraph:allow name[,name...] -- reason" silences the named
//     analyzers for that source line. The reason is mandatory by
//     convention: a bare allow reads as noise, an explained one as a
//     documented decision.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"mpgraph/internal/analysis/callgraph"
	"mpgraph/internal/analysis/cfg"
	"mpgraph/internal/analysis/dataflow"
	"mpgraph/internal/analysis/facts"
)

// Shared facts an analyzer can list in Analyzer.Requires. Facts are built
// once per package by the driver (and the analysistest harness) and shared
// across every analyzer that asks.
const (
	// NeedDataflow populates Pass.Dataflow with the package's dataflow
	// summary (reaching definitions + per-call callee resolution; see
	// internal/analysis/dataflow).
	NeedDataflow = "dataflow"
	// NeedCFG populates Pass.CFG with a memoised per-function control-flow
	// graph cache (see internal/analysis/cfg).
	NeedCFG = "cfg"
	// NeedCallGraph populates Pass.CallGraph with the package-level call
	// graph (see internal/analysis/callgraph). Implies NeedDataflow: the
	// call graph is built over the dataflow summary.
	NeedCallGraph = "callgraph"
	// NeedFacts populates Pass.Facts with the cross-package fact store
	// (see internal/analysis/facts). The driver computes facts for every
	// loaded module package in topological import order before any
	// analyzer runs, so an importer's pass always sees its dependencies'
	// final summaries.
	NeedFacts = "facts"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mpgraph:allow directives.
	Name string
	// Doc is the one-paragraph description shown by mpgraph-vet -help.
	Doc string
	// Requires lists the shared facts this analyzer needs the driver to
	// compute (NeedDataflow, NeedCFG, NeedCallGraph). Facts are built once
	// per package and shared across the analyzers that ask for them.
	Requires []string
	// Match optionally restricts which package paths the driver runs this
	// analyzer on. nil means every package. analysistest ignores Match so
	// fixtures can live in packages named "a" and "b".
	Match func(pkgPath string) bool
	// Run performs the check, reporting findings through pass.Report.
	Run func(pass *Pass) error
	// Finish, if non-nil, runs once after every package's Run, with the
	// complete fact store — the hook for whole-program checks that no
	// single package can settle (e.g. injectpoint's declared-never-fired).
	// Finish diagnostics must stamp Diagnostic.Pkg themselves; the driver
	// applies that package's //mpgraph:allow suppressions to them.
	Finish func(fp *FinishPass) error
}

// Needs reports whether the analyzer listed the named fact in its
// requirements. NeedCallGraph implies NeedDataflow.
func (a *Analyzer) Needs(fact string) bool {
	for _, r := range a.Requires {
		if r == fact {
			return true
		}
		if fact == NeedDataflow && r == NeedCallGraph {
			return true
		}
	}
	return false
}

// NeedsDataflow reports whether the analyzer needs the dataflow summary,
// directly or through NeedCallGraph.
func (a *Analyzer) NeedsDataflow() bool { return a.Needs(NeedDataflow) }

// Pass carries one package's parsed and type-checked representation to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dataflow is the package's dataflow summary, populated only for
	// analyzers that list NeedDataflow (or NeedCallGraph) in Requires
	// (nil otherwise).
	Dataflow *dataflow.Info
	// CFG is the package's memoised control-flow-graph cache, populated
	// only for analyzers that list NeedCFG in Requires (nil otherwise).
	CFG *cfg.Info
	// CallGraph is the package-level call graph, populated only for
	// analyzers that list NeedCallGraph in Requires (nil otherwise).
	CallGraph *callgraph.Graph
	// Facts is the cross-package fact store, populated only for analyzers
	// that list NeedFacts in Requires (nil otherwise). It holds the final
	// summaries of this package, every module dependency, and — import
	// order permitting — the rest of the analysis set.
	Facts *facts.Store

	report func(Diagnostic)
}

// FinishPass is the whole-program view handed to Analyzer.Finish after all
// per-package runs.
type FinishPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Packages is every loaded module package (analysis targets and their
	// module dependencies), sorted by import path.
	Packages []*Package
	// Facts is the complete fact store over Packages.
	Facts *facts.Store
	// Complete reports that the analysis targets cover the whole module
	// (the "./..." invocation). Absence-style checks ("declared but never
	// fired") are only sound when it is true.
	Complete bool

	report func(Diagnostic)
}

// Report records a whole-program finding; d.Pkg must name the package the
// position belongs to.
func (p *FinishPass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// NewFinishPass assembles a FinishPass that appends findings to out; the
// driver and the analysistest harness both build the whole-program phase
// through it.
func NewFinishPass(a *Analyzer, fset *token.FileSet, pkgs []*Package, store *facts.Store, complete bool, out *[]Diagnostic) *FinishPass {
	return &FinishPass{
		Analyzer: a,
		Fset:     fset,
		Packages: pkgs,
		Facts:    store,
		Complete: complete,
		report:   func(d Diagnostic) { *out = append(*out, d) },
	}
}

// PackageAt returns the loaded package with the given import path, or nil.
func (p *FinishPass) PackageAt(path string) *Package {
	for _, pkg := range p.Packages {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// TextEdit is one contiguous source replacement: the bytes in [Pos, End)
// are replaced by NewText. A pure insertion has Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is a set of edits that together resolve one diagnostic. The
// driver's -fix mode applies fixes whose edits do not overlap earlier ones;
// fixture goldens pin the exact rewrite per analyzer (analysistest.RunFix).
type SuggestedFix struct {
	// Message describes the rewrite ("iterate over sorted keys").
	Message string
	// TextEdits are the replacements, all within one file.
	TextEdits []TextEdit
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// Pkg is the import path of the package the finding was reported in,
	// stamped by the driver so multi-package output can sort by
	// (package, file, offset, analyzer) independent of load order.
	Pkg string
	// Provenance optionally carries the cross-package fact chain behind
	// the finding (outermost callee first, leaf cause last), so a broken
	// obligation names the line that actually allocates or blocks. It
	// rides along in the -json output.
	Provenance []string
	// SuggestedFixes optionally carries mechanical rewrites that resolve
	// the finding; the first fix is the preferred one.
	SuggestedFixes []SuggestedFix
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf records a finding at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewPass assembles a Pass that appends findings to out; the driver and the
// analysistest harness both build passes through it.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, out *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    func(d Diagnostic) { *out = append(*out, d) },
	}
}

// allowRE matches suppression directives. The directive must carry a reason
// after " -- " so every silenced finding documents why.
var allowRE = regexp.MustCompile(`//mpgraph:allow ([a-z,]+) -- \S`)

// Suppressions indexes //mpgraph:allow directives: file:line -> set of
// analyzer names silenced on that line.
type Suppressions map[string]map[string]bool

// CollectSuppressions scans the files' comments for allow directives.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) Suppressions {
	sup := Suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if sup[key] == nil {
					sup[key] = map[string]bool{}
				}
				for _, name := range strings.Split(m[1], ",") {
					sup[key][name] = true
				}
			}
		}
	}
	return sup
}

// Allowed reports whether the named analyzer is suppressed at pos.
func (s Suppressions) Allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	return s[key][name]
}

// Filter drops suppressed diagnostics, sorts the rest by file position
// (column included, so output order is byte-deterministic), and collapses
// repeats: when several analyzers — or one analyzer run twice over shared
// syntax — report the same message at the same position, only the
// lexically-first analyzer's diagnostic survives. The multichecker's output
// is therefore itself reproducible, the property it exists to enforce.
func Filter(fset *token.FileSet, diags []Diagnostic, sup Suppressions) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !sup.Allowed(fset, d.Pos, d.Analyzer) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if kept[i].Message != kept[j].Message {
			return kept[i].Message < kept[j].Message
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	deduped := kept[:0]
	for _, d := range kept {
		if n := len(deduped); n > 0 && deduped[n-1].Pos == d.Pos && deduped[n-1].Message == d.Message {
			continue
		}
		deduped = append(deduped, d)
	}
	return deduped
}
