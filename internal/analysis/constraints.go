package analysis

import (
	"go/ast"
	"go/build/constraint"
	"runtime"
	"strings"
)

// Build-constraint filtering. The loader mirrors `go vet`'s default
// behaviour of analysing the package as it builds on the host platform:
// files excluded by a GOOS/GOARCH filename suffix or a //go:build line are
// skipped, so platform pairs like qgemm_vnni_amd64.go / qgemm_novnni.go
// ("//go:build !amd64") do not type-check as redeclarations. Legacy
// "// +build" lines are not supported — the module uses //go:build only.

// knownOS / knownArch are the filename-suffix vocabularies from go/build.
// Only names in these sets act as constraints; qgemm_test.go or delta_lstm.go
// suffixes stay inert.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// matchFileName reports whether name's _GOOS/_GOARCH suffix (if any)
// matches the host, per the go/build filename rules: the last element is
// checked as an arch then an OS, and an arch may be preceded by an OS.
func matchFileName(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	n := len(parts)
	if n < 2 {
		return true
	}
	if knownArch[parts[n-1]] {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		if n >= 3 && knownOS[parts[n-2]] && parts[n-2] != runtime.GOOS {
			return false
		}
		return true
	}
	if knownOS[parts[n-1]] && parts[n-1] != runtime.GOOS {
		return false
	}
	return true
}

// hostTag evaluates one build tag for the host platform. The analysis
// build never enables cgo; release tags (go1.N) are treated as satisfied
// since the running toolchain is at least the module's floor.
func hostTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return unixOS[runtime.GOOS]
	case "cgo":
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}

// satisfiesGoBuild evaluates the file's //go:build line (the first one
// above the package clause) for the host platform. Files without one are
// unconstrained; a malformed line is left for the compiler to reject.
func satisfiesGoBuild(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(hostTag)
		}
	}
	return true
}
