package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"mpgraph/internal/analysis/callgraph"
	"mpgraph/internal/analysis/dataflow"
)

// build type-checks one in-memory file and returns its call graph plus the
// package for scope lookups.
func build(t *testing.T, src string) (*callgraph.Graph, *types.Package, *dataflow.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	df := dataflow.New(fset, []*ast.File{f}, info)
	return callgraph.New(pkg, df), pkg, df
}

// node looks a function up by package-scope name.
func node(t *testing.T, g *callgraph.Graph, pkg *types.Package, name string) *callgraph.Node {
	t.Helper()
	n := g.Node(pkg.Scope().Lookup(name))
	if n == nil {
		t.Fatalf("no node for %s", name)
	}
	return n
}

// calls reports whether from has a direct edge to to with the given kind.
func calls(from, to *callgraph.Node, kind callgraph.Kind) bool {
	for _, e := range from.Out {
		if e.Callee == to && e.Kind == kind {
			return true
		}
	}
	return false
}

// TestStaticEdges: plain calls produce Static edges and Walk follows them
// transitively.
func TestStaticEdges(t *testing.T) {
	g, pkg, _ := build(t, `package x
func a() { b() }
func b() { c() }
func c() {}
func lone() {}
`)
	na, nb, nc := node(t, g, pkg, "a"), node(t, g, pkg, "b"), node(t, g, pkg, "c")
	nl := node(t, g, pkg, "lone")
	if !calls(na, nb, callgraph.Static) || !calls(nb, nc, callgraph.Static) {
		t.Fatal("direct calls must produce Static edges")
	}
	if len(nc.In) != 1 || nc.In[0].Caller != nb {
		t.Fatal("c must record exactly the b->c incoming edge")
	}
	reached := false
	g.Walk(na, func(n *callgraph.Node) bool {
		if n == nc {
			reached = true
		}
		return false
	})
	if !reached {
		t.Fatal("Walk from a must transitively reach c")
	}
	if g.Walk(na, func(n *callgraph.Node) bool { return n == nl }) {
		t.Fatal("Walk must not reach an unconnected function")
	}
	if !g.Walk(na, func(n *callgraph.Node) bool { return n == nb }) {
		t.Fatal("Walk must stop early and report true when visit matches")
	}
}

// TestInterfaceResolution: a call through an interface method fans out to
// every package-local concrete implementation, in sorted type-name order.
func TestInterfaceResolution(t *testing.T) {
	g, pkg, _ := build(t, `package x

type stepper interface{ step() }

type alpha struct{}
func (alpha) step() {}

type beta struct{}
func (*beta) step() {}

type unrelated struct{}
func (unrelated) other() {}

func run(s stepper) { s.step() }
`)
	run := node(t, g, pkg, "run")
	if len(run.Out) != 2 {
		t.Fatalf("run must fan out to both implementations, got %d edges", len(run.Out))
	}
	for _, e := range run.Out {
		if e.Kind != callgraph.Interface {
			t.Fatalf("edge kind = %v, want Interface", e.Kind)
		}
	}
	// Package-scope name order: alpha before beta.
	recvName := func(n *callgraph.Node) string {
		sig := n.Obj.Type().(*types.Signature)
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		return t.(*types.Named).Obj().Name()
	}
	if recvName(run.Out[0].Callee) != "alpha" || recvName(run.Out[1].Callee) != "beta" {
		t.Fatalf("interface fan-out must be in sorted type order, got %s, %s",
			recvName(run.Out[0].Callee), recvName(run.Out[1].Callee))
	}
}

// TestFuncValueTracking: calls through func-typed variables follow the
// reaching definitions, including reassignment and chained variables.
func TestFuncValueTracking(t *testing.T) {
	g, pkg, _ := build(t, `package x
func first() {}
func second() {}

func caller(pick bool) {
	fv := first
	if pick {
		fv = second
	}
	chained := fv
	chained()
}
`)
	caller := node(t, g, pkg, "caller")
	nf, ns := node(t, g, pkg, "first"), node(t, g, pkg, "second")
	if !calls(caller, nf, callgraph.FuncValue) || !calls(caller, ns, callgraph.FuncValue) {
		t.Fatal("a func value call must follow reaching definitions through chained variables to both targets")
	}
}

// TestResolveCallLiterals: a func value holding a literal surfaces the
// literal through ResolveCall so analyzers can walk its body.
func TestResolveCallLiterals(t *testing.T) {
	g, pkg, df := build(t, `package x
func named() {}

func caller() {
	fv := func() { named() }
	fv()
}
`)
	caller := node(t, g, pkg, "caller")
	var call *ast.CallExpr
	ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "fv" {
				call = c
			}
		}
		return true
	})
	if call == nil {
		t.Fatal("no fv() call found")
	}
	nodes, lits := g.ResolveCall(caller.Decl, call)
	if len(nodes) != 0 {
		t.Fatalf("literal-valued call must not resolve to named nodes, got %d", len(nodes))
	}
	if len(lits) != 1 {
		t.Fatalf("literal-valued call must surface the literal, got %d", len(lits))
	}
	// The literal's body calls are attributed to the enclosing declaration
	// by the dataflow layer, so the graph still records caller -> named.
	if df.Decls[caller.Decl] == nil {
		t.Fatal("dataflow must summarise caller")
	}
	if !calls(caller, node(t, g, pkg, "named"), callgraph.Static) {
		t.Fatal("calls inside the literal body belong to the enclosing function's edges")
	}
}

// TestGenericOrigin: calling an instantiated generic function maps the edge
// to the Origin declaration's node.
func TestGenericOrigin(t *testing.T) {
	g, pkg, _ := build(t, `package x
func id[T any](v T) T { return v }

func caller() {
	_ = id[int](1)
	_ = id("s")
}
`)
	caller := node(t, g, pkg, "caller")
	gid := node(t, g, pkg, "id")
	n := 0
	for _, e := range caller.Out {
		if e.Callee == gid && e.Kind == callgraph.Static {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("both instantiations must map to the Origin node, got %d edges", n)
	}
}

// TestMethodValueCallee: a method value assigned to a variable resolves
// through func-value tracking to the concrete method.
func TestMethodValueCallee(t *testing.T) {
	g, pkg, _ := build(t, `package x
type counter struct{ n int }
func (c *counter) bump() { c.n++ }

func caller(c *counter) {
	f := c.bump
	f()
}
`)
	caller := node(t, g, pkg, "caller")
	var bump *callgraph.Node
	for _, n := range g.Nodes() {
		if n.Obj.Name() == "bump" {
			bump = n
		}
	}
	if bump == nil {
		t.Fatal("no node for method bump")
	}
	if !calls(caller, bump, callgraph.FuncValue) {
		t.Fatal("a stored method value must resolve to the concrete method")
	}
}
