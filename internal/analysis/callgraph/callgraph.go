// Package callgraph grows the dataflow layer's per-call Callee resolution
// into a package-level static call graph for mpgraph-vet's concurrency
// analyzers. Nodes are the package's declared functions and methods; edges
// are call sites resolved three ways:
//
//   - static: the callee is a declared function or method of this package
//     (generic instantiations map to their Origin declaration);
//   - function value: the callee is a func-typed variable, parameter or
//     field — its reaching definitions (dataflow.Flow) name the declared
//     functions and method values it may hold, each contributing an edge;
//   - interface: the callee is an interface method — every package-level
//     concrete type whose method set satisfies the interface contributes an
//     edge to its implementing method.
//
// The graph over-approximates on purpose (any reaching definition, any
// satisfying type), the same soundness posture as the dataflow layer: a
// pass asking "does this goroutine reach a bounded-lifetime sink?" must not
// miss an implementation. Edge order is deterministic — call sites in
// source order, interface fan-out in package-scope (sorted) name order — so
// analyzer output is byte-stable.
//
// Analyzers opt in by listing analysis.NeedCallGraph in Analyzer.Requires;
// the checker then populates Pass.CallGraph once per package.
package callgraph

import (
	"go/ast"
	"go/types"

	"mpgraph/internal/analysis/dataflow"
)

// Kind classifies how a call edge was resolved.
type Kind int

const (
	// Static is a direct call of a declared function or method.
	Static Kind = iota
	// FuncValue is a call through a func-typed variable whose reaching
	// definitions named the callee.
	FuncValue
	// Interface is an interface-method call resolved through the method
	// sets of the package's concrete types.
	Interface
)

// Edge is one resolved call.
type Edge struct {
	Caller, Callee *Node
	Site           *ast.CallExpr
	Kind           Kind
}

// Node is one declared function or method.
type Node struct {
	Obj  types.Object
	Decl *ast.FuncDecl
	// Out lists resolved outgoing calls in source order (interface fan-out
	// grouped at its call site in sorted type order). Calls whose target is
	// outside the package have no edge — analyzers consult the dataflow
	// CallSite list when external callees matter.
	Out []Edge
	// In lists the incoming edges, in the callers' construction order.
	In []Edge
}

// Graph is the package call graph.
type Graph struct {
	pkg   *types.Package
	df    *dataflow.Info
	nodes map[types.Object]*Node
}

// New builds the call graph for the package summarised by df.
func New(pkg *types.Package, df *dataflow.Info) *Graph {
	g := &Graph{pkg: pkg, df: df, nodes: map[types.Object]*Node{}}
	funcs := df.SortedFuncs()
	for _, fn := range funcs {
		if fn.Obj != nil {
			g.nodes[fn.Obj] = &Node{Obj: fn.Obj, Decl: fn.Decl}
		}
	}
	for _, fn := range funcs {
		if fn.Obj == nil {
			continue
		}
		caller := g.nodes[fn.Obj]
		for _, cs := range fn.Callees {
			nodes, _ := g.resolve(fn.Decl, cs, map[types.Object]bool{})
			for _, callee := range nodes {
				e := Edge{Caller: caller, Callee: callee.n, Site: cs.Call, Kind: callee.kind}
				caller.Out = append(caller.Out, e)
				callee.n.In = append(callee.n.In, e)
			}
		}
	}
	return g
}

// Node returns the graph node for a declared function object, mapping
// generic instantiations to their Origin declaration. nil when obj is not a
// function declared in this package.
func (g *Graph) Node(obj types.Object) *Node {
	if obj == nil {
		return nil
	}
	if f, ok := obj.(*types.Func); ok {
		obj = f.Origin()
	}
	return g.nodes[obj]
}

// Nodes returns every node in source-position order.
func (g *Graph) Nodes() []*Node {
	funcs := g.df.SortedFuncs()
	out := make([]*Node, 0, len(funcs))
	for _, fn := range funcs {
		if fn.Obj != nil {
			out = append(out, g.nodes[fn.Obj])
		}
	}
	return out
}

// resolved pairs a callee node with how it was found.
type resolved struct {
	n    *Node
	kind Kind
}

// resolve maps one call site to its package-local callee nodes and any
// function literals a func-valued callee may hold. seen guards against
// cyclic func-value reassignment chains.
func (g *Graph) resolve(enclosing *ast.FuncDecl, cs dataflow.CallSite, seen map[types.Object]bool) ([]resolved, []*ast.FuncLit) {
	switch obj := cs.Obj.(type) {
	case *types.Func:
		if recv := receiverInterface(obj); recv != nil {
			var out []resolved
			for _, m := range g.implementations(recv, obj) {
				if n := g.Node(m); n != nil {
					out = append(out, resolved{n, Interface})
				}
			}
			return out, nil
		}
		if n := g.Node(obj); n != nil {
			return []resolved{{n, Static}}, nil
		}
		return nil, nil
	case *types.Var:
		return g.resolveFuncValue(enclosing, obj, seen)
	default:
		return nil, nil
	}
}

// resolveFuncValue chases a func-typed variable's reaching definitions to
// the declared functions and literals it may hold.
func (g *Graph) resolveFuncValue(enclosing *ast.FuncDecl, v *types.Var, seen map[types.Object]bool) ([]resolved, []*ast.FuncLit) {
	if seen[v] || enclosing == nil {
		return nil, nil
	}
	seen[v] = true
	flow := g.df.FuncFlow(enclosing)
	var nodes []resolved
	var lits []*ast.FuncLit
	for _, def := range flow.Defs[v] {
		switch e := ast.Unparen(def).(type) {
		case *ast.FuncLit:
			lits = append(lits, e)
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.IndexListExpr:
			obj := dataflow.Callee(g.df.TypesInfo, &ast.CallExpr{Fun: e})
			switch obj := obj.(type) {
			case *types.Func:
				if n := g.Node(obj); n != nil {
					nodes = append(nodes, resolved{n, FuncValue})
				}
			case *types.Var:
				ns, ls := g.resolveFuncValue(enclosing, obj, seen)
				nodes = append(nodes, ns...)
				lits = append(lits, ls...)
			}
		}
	}
	return nodes, lits
}

// ResolveCall resolves one call site inside enclosing to package-local
// callee nodes plus any function literals a func-valued callee may hold —
// the per-site view analyzers use when walking closure bodies the graph's
// node set cannot represent.
func (g *Graph) ResolveCall(enclosing *ast.FuncDecl, call *ast.CallExpr) ([]*Node, []*ast.FuncLit) {
	cs := dataflow.CallSite{Call: call, Obj: dataflow.Callee(g.df.TypesInfo, call)}
	rs, lits := g.resolve(enclosing, cs, map[types.Object]bool{})
	nodes := make([]*Node, 0, len(rs))
	for _, r := range rs {
		nodes = append(nodes, r.n)
	}
	return nodes, lits
}

// Walk visits start and everything transitively callable from it over Out
// edges, in deterministic order, stopping early (and reporting true) when
// visit returns true.
func (g *Graph) Walk(start *Node, visit func(*Node) bool) bool {
	seen := map[*Node]bool{}
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n == nil || seen[n] {
			return false
		}
		seen[n] = true
		if visit(n) {
			return true
		}
		for _, e := range n.Out {
			if walk(e.Callee) {
				return true
			}
		}
		return false
	}
	return walk(start)
}

// receiverInterface returns the interface type a method is declared on, or
// nil for functions and concrete methods.
func receiverInterface(f *types.Func) *types.Interface {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}

// implementations lists the package's concrete methods that can stand
// behind an interface-method call, in package-scope name order.
func (g *Graph) implementations(iface *types.Interface, m *types.Func) []*types.Func {
	var out []*types.Func
	for _, name := range g.pkg.Scope().Names() { // Names() is sorted
		tn, ok := g.pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		T := tn.Type()
		if types.IsInterface(T) {
			continue
		}
		for _, t := range []types.Type{T, types.NewPointer(T)} {
			if !types.Implements(t, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(t, true, g.pkg, m.Name()) //mpgraph:allow errdrop -- Implements already vetted the method set; only the object is needed, not its index path or addressability
			if f, ok := obj.(*types.Func); ok {
				out = append(out, f.Origin())
			}
			break // the pointer method set contains the value's; one hit is enough
		}
	}
	return out
}
