package facts

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"mpgraph/internal/analysis/dataflow"
)

// StdlibNoAlloc is the closed set of standard-library packages whose
// functions are trusted not to allocate on the paths the kernels use. It is
// the only remaining trust list in the noalloc story: module-internal
// callees are proven from their own summaries, never assumed.
var StdlibNoAlloc = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"runtime":     true,
	"sync/atomic": true,
}

// noallocMarker mirrors the noalloc analyzer's opt-in directive.
const noallocMarker = "//mpgraph:noalloc"

// recoversMarker designates recovery-boundary helpers (golifetime).
const recoversMarker = "mpgraph:recovers"

// allowNoallocRE matches suppression lines that silence noalloc; the fact
// computation honours them exactly as the driver's Filter would, so a
// reasoned in-function allow keeps the function's NoAlloc fact provable.
var allowNoallocRE = regexp.MustCompile(`//mpgraph:allow ([a-z,]+) -- \S`)

// fnState is one function's in-flight summary during the fixpoint.
type fnState struct {
	fact *FuncFact
	decl *ast.FuncDecl
	// allocCalls are the call sites the NoAlloc obligation must vet
	// (steady-state region, allow lines excluded), in source order.
	allocCalls []*ast.CallExpr
	// behCallees are statically resolved callees, for propagating
	// MayPanic/Blocks/Sink/Recovers.
	behCallees []*types.Func
}

// Compute summarises one package. Facts for every module dependency must
// already be in store — the driver guarantees it by visiting packages in
// topological import order — so cross-package calls resolve against final
// summaries and only the intra-package fixpoint iterates.
func Compute(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, store *Store) *PackageFacts {
	allowed := allowNoallocLines(fset, files)
	relPos := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}

	var order []*fnState
	byObj := map[*types.Func]*fnState{}
	inits := 0
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sym := Symbol(obj)
			if fd.Name.Name == "init" && fd.Recv == nil {
				// Multiple init funcs share a name; disambiguate the keys.
				// Nothing can call init, so the keys are never looked up.
				inits++
				sym = fmt.Sprintf("init#%d", inits)
			}
			st := &fnState{fact: &FuncFact{Func: sym, NoAlloc: true, TakesCtx: takesCtx(obj)}, decl: fd}
			if fd.Body == nil {
				// Assembly or externally linked: no body to prove. The
				// //mpgraph:noalloc marker is the author's contract (the
				// AllocsPerRun gates measure it); everything else is
				// assumed inert.
				st.fact.NoAlloc = hasNoallocMarker(fd)
				if !st.fact.NoAlloc {
					st.fact.Reason = "has no body to analyze and no //mpgraph:noalloc marker"
				}
			} else {
				scanLeaf(fset, info, pkg, st, allowed, relPos)
			}
			order = append(order, st)
			byObj[obj] = st
		}
	}

	resolveFn := func(call *ast.CallExpr) *types.Func {
		f, _ := dataflow.Callee(info, call).(*types.Func)
		if f != nil {
			f = f.Origin()
		}
		return f
	}
	// factFor looks up a callee's summary: intra-package from the in-flight
	// states, cross-package from the store.
	factFor := func(f *types.Func) *FuncFact {
		if st, ok := byObj[f]; ok {
			return st.fact
		}
		return store.ForFunc(f)
	}

	// Intra-package fixpoint. All facts are monotone (NoAlloc only falls,
	// the behaviour bits only rise), so iteration terminates.
	for changed := true; changed; {
		changed = false
		for _, st := range order {
			if st.decl.Body == nil {
				continue
			}
			f := st.fact
			if f.NoAlloc {
				for _, call := range st.allocCalls {
					if broken, _, _ := allocCallBroken(resolveFn(call), factFor); broken { //mpgraph:allow errdrop -- fixpoint needs only the verdict; the provenance pass re-derives reason and via canonically
						f.NoAlloc = false
						changed = true
						break
					}
				}
			}
			for _, callee := range st.behCallees {
				cf := factFor(callee)
				if cf == nil {
					continue
				}
				if cf.MayPanic && !f.MayPanic {
					f.MayPanic, changed = true, true
				}
				if cf.Blocks && !f.Blocks {
					f.Blocks, changed = true, true
				}
				if cf.Sink && !f.Sink {
					f.Sink, changed = true, true
				}
				if cf.Recovers && !f.Recovers {
					f.Recovers, changed = true, true
				}
			}
		}
	}

	// Provenance pass: for every broken obligation without a leaf reason,
	// blame the first offending call in source order — canonical regardless
	// of the fixpoint's iteration structure, so the serialised bytes are.
	for _, st := range order {
		f := st.fact
		if f.NoAlloc || f.Reason != "" || st.decl.Body == nil {
			continue
		}
		for _, call := range st.allocCalls {
			callee := resolveFn(call)
			broken, reason, via := allocCallBroken(callee, factFor)
			if !broken {
				continue
			}
			if reason != "" {
				f.Reason = reason + " at " + relPos(call.Pos())
			} else {
				f.Via = via
			}
			break
		}
		if f.Reason == "" && f.Via == "" {
			f.Reason = "unprovable for an unrecorded cause" // defensive; unreachable
		}
	}

	pf := &PackageFacts{Path: pkg.Path(), Version: Version, Points: rosterPoints(info, pkg, files, relPos)}
	for _, st := range order {
		pf.Funcs = append(pf.Funcs, st.fact)
	}
	sort.Slice(pf.Funcs, func(i, j int) bool { return pf.Funcs[i].Func < pf.Funcs[j].Func })
	return pf
}

// allocCallBroken judges one steady-state call site against the callee's
// summary. reason is non-empty for a leaf-style breach (dynamic call,
// untrusted stdlib), via carries the "pkgpath.Symbol" of a module callee
// whose own NoAlloc failed.
func allocCallBroken(callee *types.Func, factFor func(*types.Func) *FuncFact) (broken bool, reason, via string) {
	if callee == nil {
		return true, "makes a dynamic call the analyzer cannot verify", ""
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return false, "", "" // universe scope (error.Error): no allocation
	}
	if cf := factFor(callee); cf != nil {
		if cf.NoAlloc {
			return false, "", ""
		}
		return true, "", pkg.Path() + "." + cf.Func
	}
	if StdlibNoAlloc[pkg.Path()] {
		return false, "", ""
	}
	return true, fmt.Sprintf("calls %s.%s, which is outside the trusted no-alloc set", pkg.Name(), callee.Name()), ""
}

// scanLeaf fills a function's leaf facts and call lists in two passes over
// the body: the shared ScanAlloc walk for the allocation rules, and a
// behaviour walk for panic/blocking/sink/recovery/injection/lock facts.
func scanLeaf(fset *token.FileSet, info *types.Info, pkg *types.Package, st *fnState,
	allowed map[string]bool, relPos func(token.Pos) string) {
	f := st.fact
	fd := st.decl
	lineKey := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}

	ScanAlloc(info, pkg, fd,
		func(pos token.Pos, reason string) {
			if allowed[lineKey(pos)] {
				return
			}
			f.NoAlloc = false
			if f.Reason == "" {
				f.Reason = reason + " at " + relPos(pos)
			}
		},
		func(call *ast.CallExpr) {
			if allowed[lineKey(call.Pos())] {
				return
			}
			st.allocCalls = append(st.allocCalls, call)
		})

	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), recoversMarker) {
		f.Recovers = true
	}
	fires := map[string]bool{}
	arms := map[string]bool{}
	locks := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			f.Blocks = true
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				f.Blocks = true
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
						f.Sink = true
					}
				}
			}
		case *ast.SelectStmt:
			f.Sink = true
			blocking := true
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false // default clause: non-blocking poll
				}
			}
			if blocking {
				f.Blocks = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					f.Blocks = true
					f.Sink = true
				}
			}
		case *ast.CallExpr:
			if id := rootIdent(s.Fun); id != nil {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "panic":
						f.MayPanic = true
					case "recover":
						f.Recovers = true
					}
					return true
				}
			}
			callee, _ := dataflow.Callee(info, s).(*types.Func)
			if callee == nil {
				// Dynamic call: panic reachability is unknowable, so the
				// fact is conservative; Blocks deliberately stays an
				// under-approximation (see FuncFact.Blocks).
				f.MayPanic = true
				return true
			}
			callee = callee.Origin()
			cpkg := callee.Pkg()
			switch {
			case cpkg == nil:
			case cpkg.Path() == "time" && callee.Name() == "Sleep":
				f.Blocks = true
			case cpkg.Path() == "sync" && callee.Name() == "Wait":
				f.Blocks = true // WaitGroup.Wait or Cond.Wait
			case cpkg.Path() == "sync" && (callee.Name() == "Lock" || callee.Name() == "RLock"):
				if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
					locks[types.ExprString(sel.X)] = true
				}
			case isInjectionCall(callee):
				val := "*"
				if len(s.Args) > 0 {
					if tv, ok := info.Types[s.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						val = constant.StringVal(tv.Value)
					}
				}
				if callee.Name() == "Fire" {
					fires[val] = true
				} else {
					arms[val] = true
				}
				fallthrough
			default:
				st.behCallees = append(st.behCallees, callee)
			}
		}
		return true
	})
	f.Fires = sortedKeys(fires)
	f.Arms = sortedKeys(arms)
	f.Locks = sortedKeys(locks)
}

// isInjectionCall matches the resilience injector surface by shape: a
// function named Fire, Arm, or ArmProb whose first parameter is a named
// type called Point. The shape check (not a path check) lets analysistest
// fixtures declare their own miniature resilience package.
func isInjectionCall(f *types.Func) bool {
	switch f.Name() {
	case "Fire", "Arm", "ArmProb":
	default:
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "Point"
}

// takesCtx reports a context.Context parameter anywhere in the signature.
func takesCtx(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

// hasNoallocMarker mirrors the noalloc analyzer's directive match: the doc
// line must start with the marker, so prose mentions do not opt in.
func hasNoallocMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == noallocMarker || strings.HasPrefix(c.Text, noallocMarker+" ") {
			return true
		}
	}
	return false
}

// allowNoallocLines indexes file:line positions whose //mpgraph:allow
// directive names noalloc.
func allowNoallocLines(fset *token.FileSet, files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowNoallocRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					if name == "noalloc" {
						p := fset.Position(c.Pos())
						out[fmt.Sprintf("%s:%d", p.Filename, p.Line)] = true
					}
				}
			}
		}
	}
	return out
}

// rosterPoints extracts the injection-point roster from a package that
// declares `type Point` (underlying string) and a `Points()` enumerator:
// every Point-typed constant referenced in Points' body, with its
// declaration position. Returns nil for every other package.
func rosterPoints(info *types.Info, pkg *types.Package, files []*ast.File, relPos func(token.Pos) string) []PointDecl {
	ptObj := pkg.Scope().Lookup("Point")
	tn, ok := ptObj.(*types.TypeName)
	if !ok {
		return nil
	}
	if b, ok := tn.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return nil
	}
	var body *ast.BlockStmt
	for _, file := range files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "Points" && fd.Body != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []PointDecl
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		c, ok := info.Uses[id].(*types.Const)
		if !ok || c.Type() != tn.Type() || c.Val().Kind() != constant.String {
			return true
		}
		name := constant.StringVal(c.Val())
		if !seen[name] {
			seen[name] = true
			out = append(out, PointDecl{Name: name, Pos: relPos(c.Pos())})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
