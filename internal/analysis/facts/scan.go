package facts

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScanAlloc walks one function body applying the noalloc leaf rules and is
// the single source of truth for what counts as a steady-state allocation:
// make/new, append to a non-parameter, slice/map composite literals,
// address-taken composite literals, string concatenation, string<->slice
// conversions, capturing closures, and go statements. Three regions are
// exempt: the body of an `if x == nil { ... }` guard (the sanctioned
// allocating slow path of the nil-receiver dispatch idiom), and the
// arguments of a direct panic(...) call (a terminating path — the invariant
// helpers' formatted failure messages allocate only when the process is
// already going down).
//
// Non-builtin, non-conversion calls are not judged here: each is handed to
// onCall for the caller to vet — the facts fixpoint resolves them against
// callee summaries, the noalloc analyzer against Pass.Facts. Variadic call
// sites and interface-value boxing remain unmodelled; AllocsPerRun is the
// ground truth this scan approximates.
func ScanAlloc(info *types.Info, pkg *types.Package, fd *ast.FuncDecl,
	onAlloc func(pos token.Pos, reason string), onCall func(call *ast.CallExpr)) {
	paramObjs := paramSet(info, fd)
	var walk func(root ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.IfStmt:
				if isNilGuard(info, s.Cond) {
					// Nil-receiver dispatch: the guarded block is the
					// sanctioned allocating fallback.
					if s.Init != nil {
						walk(s.Init)
					}
					if s.Else != nil {
						walk(s.Else)
					}
					return false
				}
			case *ast.CallExpr:
				return scanCall(info, s, paramObjs, onAlloc, onCall)
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
						onAlloc(s.Pos(), "takes the address of a composite literal")
					}
				}
			case *ast.CompositeLit:
				if tv, ok := info.Types[s]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Map:
						onAlloc(s.Pos(), "builds a slice or map literal")
					}
				}
			case *ast.FuncLit:
				if capturesOuter(info, pkg, s) {
					onAlloc(s.Pos(), "builds a capturing closure")
				}
			case *ast.GoStmt:
				onAlloc(s.Pos(), "starts a goroutine")
			case *ast.BinaryExpr:
				if s.Op == token.ADD && isStringType(info.Types[s].Type) {
					onAlloc(s.Pos(), "concatenates strings")
				}
			case *ast.AssignStmt:
				if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
					if tv, ok := info.Types[s.Lhs[0]]; ok && isStringType(tv.Type) {
						onAlloc(s.Pos(), "concatenates strings")
					}
				}
			}
			return true
		})
	}
	walk(fd.Body)
}

// scanCall classifies one call expression; the return value feeds
// ast.Inspect (false stops descent into the call's children).
func scanCall(info *types.Info, call *ast.CallExpr, paramObjs map[types.Object]bool,
	onAlloc func(pos token.Pos, reason string), onCall func(call *ast.CallExpr)) bool {

	// Type conversions: only string <-> []byte/[]rune copies the data.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			src, ok := info.Types[call.Args[0]]
			if ok && stringSliceConversion(tv.Type, src.Type) {
				onAlloc(call.Pos(), "converts between string and slice")
			}
		}
		return true
	}

	// Builtins.
	if id := rootIdent(call.Fun); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				onAlloc(call.Pos(), "calls make")
			case "new":
				onAlloc(call.Pos(), "calls new")
			case "append":
				if len(call.Args) > 0 {
					dst := rootIdent(call.Args[0])
					if dst == nil || !paramObjs[info.Uses[dst]] {
						name := "an expression"
						if dst != nil {
							name = dst.Name
						}
						onAlloc(call.Pos(), "appends to "+name+", which is not a caller-provided parameter")
					}
				}
			case "panic":
				// Terminating path: the arguments' allocations never run in
				// steady state. Skip the whole subtree.
				return false
			}
			return true
		}
	}

	onCall(call)
	return true
}

// paramSet collects the function's parameter objects (including the
// receiver): append may grow these, nothing else.
func paramSet(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			addField(f)
		}
	}
	for _, f := range fd.Type.Params.List {
		addField(f)
	}
	return out
}

// rootIdent unwraps an expression to its base identifier, if any.
func rootIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// isNilGuard matches `x == nil` / `nil == x` conditions.
func isNilGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	return isNilExpr(info, be.X) || isNilExpr(info, be.Y)
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringSliceConversion reports a conversion between string and a byte or
// rune slice in either direction (both copy).
func stringSliceConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isStringType(src) && isByteOrRuneSlice(dst))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturesOuter reports whether the func literal references a variable
// declared outside it (other than package-level variables and struct
// fields) — the condition under which the closure is heap-allocated.
func capturesOuter(info *types.Info, pkg *types.Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkg.Scope() {
			return true // package-level variable: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}
