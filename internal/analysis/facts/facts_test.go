package facts

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// roundTripFacts is a representative package summary touching every field.
func roundTripFacts() *PackageFacts {
	return &PackageFacts{
		Path:    "mpgraph/internal/example",
		Version: Version,
		Funcs: []*FuncFact{
			{Func: "(*T).Method", NoAlloc: true, TakesCtx: true, Locks: []string{"s.mu"}},
			{Func: "Broken", NoAlloc: false, Reason: "calls make at x.go:10"},
			{Func: "Chained", NoAlloc: false, Via: "mpgraph/internal/other.Leaf"},
			{Func: "Worker", NoAlloc: true, MayPanic: true, Blocks: true, Sink: true,
				Recovers: true, Fires: []string{"serve-flush"}, Arms: []string{"*"}},
		},
		Points: []PointDecl{{Name: "serve-flush", Pos: "inject.go:40"}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pf := roundTripFacts()
	data, err := Encode(pf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, re) {
		t.Errorf("round trip changed bytes:\n--- first ---\n%s\n--- second ---\n%s", data, re)
	}
	if got.Funcs[0].Func != "(*T).Method" || !got.Funcs[0].NoAlloc {
		t.Errorf("decoded funcs mangled: %+v", got.Funcs[0])
	}
	if len(got.Points) != 1 || got.Points[0].Name != "serve-flush" {
		t.Errorf("decoded points mangled: %+v", got.Points)
	}
}

func TestEncodeCanonicalOrderAndTrailingNewline(t *testing.T) {
	pf := roundTripFacts()
	// Scramble: Encode must sort by symbol regardless of input order.
	pf.Funcs[0], pf.Funcs[3] = pf.Funcs[3], pf.Funcs[0]
	data, err := Encode(pf)
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := Encode(roundTripFacts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, canonical) {
		t.Error("encoding is sensitive to input order")
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Error("encoded facts must end with a newline")
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	pf := roundTripFacts()
	pf.Version = Version + 1
	data, err := Encode(pf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Error("Decode accepted a facts file from a different version")
	}
}

func TestFileNameFlattensPath(t *testing.T) {
	got := FileName("mpgraph/internal/analysis/facts")
	want := "mpgraph__internal__analysis__facts.facts.json"
	if got != want {
		t.Errorf("FileName = %q, want %q", got, want)
	}
}

const computeSrc = `package p

import "sync"

type S struct{ mu sync.Mutex }

//mpgraph:noalloc
func Clean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

func Alloc(n int) []int { return make([]int, n) }

func Wrap(n int) []int { return Alloc(n) }

func (s *S) Block(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch
}

func MayPanic(ok bool) {
	if !ok {
		panic("invariant")
	}
}

func Recovers(f func()) {
	defer func() { recover() }()
	f()
}
`

// computeFixture type-checks computeSrc and summarises it twice, proving
// Compute is a pure function of the source.
func TestComputeDeterministicBytes(t *testing.T) {
	encode := func() []byte {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "p.go", computeSrc, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
		pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatal(err)
		}
		pf := Compute(fset, []*ast.File{f}, pkg, info, NewStore())
		data, err := Encode(pf)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first, second := encode(), encode()
	if !bytes.Equal(first, second) {
		t.Errorf("two Compute runs differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	pf, err := Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*FuncFact{}
	for _, fn := range pf.Funcs {
		byName[fn.Func] = fn
	}
	checks := []struct {
		fn   string
		want func(*FuncFact) bool
		desc string
	}{
		{"Clean", func(f *FuncFact) bool { return f.NoAlloc }, "proves NoAlloc"},
		{"Alloc", func(f *FuncFact) bool { return !f.NoAlloc && f.Reason != "" }, "breaks with a leaf Reason"},
		{"Wrap", func(f *FuncFact) bool { return !f.NoAlloc && f.Via == "p.Alloc" }, "breaks via p.Alloc"},
		{"(*S).Block", func(f *FuncFact) bool { return f.Blocks && len(f.Locks) == 1 }, "blocks and records the lock"},
		{"MayPanic", func(f *FuncFact) bool { return f.MayPanic && f.NoAlloc }, "may panic yet stays NoAlloc (panic-arg exemption)"},
		{"Recovers", func(f *FuncFact) bool { return f.Recovers }, "recovers"},
	}
	for _, c := range checks {
		fn, ok := byName[c.fn]
		if !ok {
			t.Errorf("no fact for %s", c.fn)
			continue
		}
		if !c.want(fn) {
			t.Errorf("%s: fact %+v does not satisfy: %s", c.fn, fn, c.desc)
		}
	}
}

func TestWriteDirRoundTrips(t *testing.T) {
	store := NewStore()
	store.Add(roundTripFacts())
	dir := t.TempDir()
	if err := store.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName("mpgraph/internal/example"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Path != "mpgraph/internal/example" || len(pf.Funcs) != 4 {
		t.Errorf("written facts mangled: path=%q funcs=%d", pf.Path, len(pf.Funcs))
	}
}

func TestChainFollowsViaToLeaf(t *testing.T) {
	store := NewStore()
	store.Add(&PackageFacts{Path: "m/leafpkg", Version: Version, Funcs: []*FuncFact{
		{Func: "Leaf", Reason: "calls make at leaf.go:3"},
	}})
	store.Add(&PackageFacts{Path: "m/mid", Version: Version, Funcs: []*FuncFact{
		{Func: "Mid", Via: "m/leafpkg.Leaf"},
	}})
	fact := store.Func("m/mid", "Mid")
	got := store.Chain("m/mid", fact)
	want := []string{"m/mid.Mid", "m/leafpkg.Leaf: calls make at leaf.go:3"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Chain = %q, want %q", got, want)
	}
}
