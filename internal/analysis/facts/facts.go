// Package facts is mpgraph-vet's cross-package fact layer: deterministic,
// serializable per-function behaviour summaries computed bottom-up over the
// module's package dependency graph, mirroring golang.org/x/tools/go/analysis
// facts on the standard library only.
//
// The driver visits packages in topological import order, so by the time a
// package is summarised every module dependency's facts are already in the
// Store. Analyzers consult the store through Pass.Facts to settle questions
// the per-package view cannot: "is this cross-package callee allocation-free?"
// (noalloc), "may this ctx-less callee block?" (ctxflow), "does this spawned
// goroutine reach a sink or a recovery boundary in another package?"
// (golifetime), "is this injection-point literal on the declared roster?"
// (injectpoint).
//
// Serialisation is byte-deterministic by construction: one JSON file per
// package, entries sorted by symbol, positions rendered as base-name:line
// (machine-independent), no timestamps. Two runs over the same tree must
// produce identical bytes — CI diffs the fact dirs of two runs to enforce it.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Version is bumped whenever the encoding changes incompatibly; Decode
// rejects files written by a different version rather than misreading them.
const Version = 1

// FuncFact is one function's behaviour summary. Boolean facts are computed
// to a documented approximation (see Compute): NoAlloc is an
// under-approximation of safety (false when unprovable), while MayPanic,
// Blocks, Sink, and Recovers are reachability facts propagated only along
// statically resolved module-internal calls.
type FuncFact struct {
	// Func is the symbol key: "Name" for functions, "(T).Name" or
	// "(*T).Name" for methods, with generic instantiations collapsed to
	// their origin declaration.
	Func string `json:"func"`
	// NoAlloc reports that steady-state execution of the function was
	// proven heap-allocation-free under the noalloc rules (nil-guard
	// fallbacks, //mpgraph:allow noalloc lines, and panic arguments are
	// exempt; every reachable callee must itself be proven or trusted).
	NoAlloc bool `json:"noalloc"`
	// MayPanic reports a reachable panic(...) in the function or a
	// statically resolved module callee (dynamic calls count as may-panic).
	MayPanic bool `json:"mayPanic,omitempty"`
	// Blocks reports a potentially unbounded blocking operation — channel
	// send/receive, select without default, range over a channel,
	// time.Sleep, WaitGroup.Wait, Cond.Wait — in the function or a
	// statically resolved module callee. Mutex acquisition is deliberately
	// excluded (bounded by the lockcheck contract), as are dynamic calls.
	Blocks bool `json:"blocks,omitempty"`
	// TakesCtx reports a context.Context parameter in the signature.
	TakesCtx bool `json:"takesCtx,omitempty"`
	// Sink reports that the function contains a goroutine-lifetime sink
	// (select, receive from ctx.Done(), range over a channel), directly or
	// through statically resolved module callees.
	Sink bool `json:"sink,omitempty"`
	// Recovers reports a recover() call or an //mpgraph:recovers-marked
	// body, directly or through statically resolved module callees.
	Recovers bool `json:"recovers,omitempty"`
	// Fires lists the injection-point literals passed to resilience
	// Fire(...) in this function's body ("*" for a non-constant argument).
	Fires []string `json:"fires,omitempty"`
	// Arms lists the injection-point literals passed to resilience
	// Arm/ArmProb(...) in this function's body ("*" for non-constant).
	Arms []string `json:"arms,omitempty"`
	// Locks lists the receiver expressions of sync mutex acquisitions
	// (Lock/RLock) performed directly in this function's body.
	Locks []string `json:"locks,omitempty"`
	// Reason explains a false NoAlloc when the leak is local: the first
	// offending construct in source order, as "what at file:line".
	Reason string `json:"reason,omitempty"`
	// Via explains a false NoAlloc inherited from a callee: the
	// "pkgpath.Symbol" whose fact broke the chain. Follow it through the
	// store (Chain) to reach the leaf Reason.
	Via string `json:"via,omitempty"`
}

// PointDecl is one declared injection point in a roster package.
type PointDecl struct {
	Name string `json:"name"` // the point's string value, e.g. "serve-flush"
	Pos  string `json:"pos"`  // declaration position as base-name:line
}

// PackageFacts is one package's serialised summary.
type PackageFacts struct {
	Path    string      `json:"path"`
	Version int         `json:"version"`
	Funcs   []*FuncFact `json:"funcs"`
	// Points is the injection-point roster, present only for a package
	// that declares `type Point` (underlying string) and a `Points()`
	// function enumerating the constants.
	Points []PointDecl `json:"points,omitempty"`
}

// Store holds the facts of every package summarised so far, keyed by import
// path. It is filled in topological order by the driver and read through
// Pass.Facts by analyzers.
type Store struct {
	pkgs map[string]*PackageFacts
	fn   map[string]map[string]*FuncFact
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pkgs: map[string]*PackageFacts{}, fn: map[string]map[string]*FuncFact{}}
}

// Add registers a package's facts, replacing any previous entry for the path.
func (s *Store) Add(pf *PackageFacts) {
	s.pkgs[pf.Path] = pf
	idx := make(map[string]*FuncFact, len(pf.Funcs))
	for _, f := range pf.Funcs {
		idx[f.Func] = f
	}
	s.fn[pf.Path] = idx
}

// Pkg returns the facts for the package at path, or nil if none were
// computed (standard library, or a package outside the analysis set).
func (s *Store) Pkg(path string) *PackageFacts { return s.pkgs[path] }

// Func returns one function's fact by package path and symbol key, or nil.
func (s *Store) Func(path, symbol string) *FuncFact {
	return s.fn[path][symbol]
}

// ForFunc resolves a *types.Func (instantiations collapsed to their origin)
// to its fact, or nil when the function's package has no facts — the
// standard library, a bodiless declaration outside the set, or an interface
// method, which has no body to summarise.
func (s *Store) ForFunc(f *types.Func) *FuncFact {
	if f == nil {
		return nil
	}
	f = f.Origin()
	pkg := f.Pkg()
	if pkg == nil {
		return nil
	}
	return s.Func(pkg.Path(), Symbol(f))
}

// Paths returns the summarised package paths in sorted order.
func (s *Store) Paths() []string {
	out := make([]string, 0, len(s.pkgs))
	for p := range s.pkgs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Chain renders the provenance of a broken NoAlloc obligation: starting
// from fact (owned by the package at path), it follows Via references
// through the store until a leaf Reason, yielding entries like
// "pkg.Symbol" and finally "pkg.Symbol: calls make at file.go:12". The walk
// is depth-capped so a (theoretically impossible) cycle cannot hang it.
func (s *Store) Chain(path string, fact *FuncFact) []string {
	var out []string
	for depth := 0; fact != nil && depth < 32; depth++ {
		name := path + "." + fact.Func
		if fact.Reason != "" {
			out = append(out, name+": "+fact.Reason)
			return out
		}
		if fact.Via == "" {
			out = append(out, name)
			return out
		}
		out = append(out, name)
		viaPath, viaSym, ok := splitVia(fact.Via)
		if !ok {
			return out
		}
		path, fact = viaPath, s.Func(viaPath, viaSym)
	}
	return out
}

// splitVia splits "pkg/path.Symbol" at the last dot after the final slash.
func splitVia(via string) (path, symbol string, ok bool) {
	slash := strings.LastIndex(via, "/")
	dot := strings.Index(via[slash+1:], ".")
	if dot < 0 {
		return "", "", false
	}
	dot += slash + 1
	return via[:dot], via[dot+1:], true
}

// Symbol returns the serialised symbol key for a function object:
// "Name" for package-level functions, "(T).Name" / "(*T).Name" for methods.
// Generic instantiations are collapsed to the origin declaration.
func Symbol(f *types.Func) string {
	f = f.Origin()
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return f.Name()
	}
	t := sig.Recv().Type()
	ptr := false
	if p, okp := t.(*types.Pointer); okp {
		ptr, t = true, p.Elem()
	}
	name := "?"
	if named, okn := t.(*types.Named); okn {
		name = named.Obj().Name()
	}
	if ptr {
		return "(*" + name + ")." + f.Name()
	}
	return "(" + name + ")." + f.Name()
}

// Encode renders a package's facts as canonical bytes: indented JSON with
// struct-ordered fields, funcs sorted by symbol, trailing newline. The
// output is a pure function of the package's source, so two runs over the
// same tree produce identical bytes.
func Encode(pf *PackageFacts) ([]byte, error) {
	sort.Slice(pf.Funcs, func(i, j int) bool { return pf.Funcs[i].Func < pf.Funcs[j].Func })
	sort.Slice(pf.Points, func(i, j int) bool { return pf.Points[i].Name < pf.Points[j].Name })
	data, err := json.MarshalIndent(pf, "", "\t")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses bytes produced by Encode, rejecting version mismatches.
func Decode(data []byte) (*PackageFacts, error) {
	var pf PackageFacts
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("facts: decoding: %w", err)
	}
	if pf.Version != Version {
		return nil, fmt.Errorf("facts: version %d, want %d", pf.Version, Version)
	}
	return &pf, nil
}

// FileName maps an import path to its facts file name, escaping path
// separators so every package lands flat in one directory.
func FileName(path string) string {
	return strings.ReplaceAll(path, "/", "__") + ".facts.json"
}

// WriteDir serialises every package in the store into dir (created if
// needed), one file per package. File contents and names are deterministic;
// CI runs this twice into separate dirs and requires `diff -r` to be empty.
func (s *Store) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, path := range s.Paths() {
		data, err := Encode(s.pkgs[path])
		if err != nil {
			return fmt.Errorf("facts: encoding %s: %w", path, err)
		}
		if err := os.WriteFile(filepath.Join(dir, FileName(path)), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
