// Package dataflow is the lightweight dataflow layer under mpgraph-vet's
// order/determinism analyzers (DESIGN.md §7). It stays deliberately small —
// standard library only, no SSA — and provides exactly two facilities:
//
//   - an intra-procedural reaching-definition index (Flow): for every local
//     object, the set of expressions ever assigned to it through :=, =,
//     op-assign, var specs and range clauses, with a fixpoint taint closure
//     over those chains (Tainted / ExprTainted);
//   - a package-level call graph (Func, Callers) with deterministic edge
//     order and a transitive closure helper (Closure), so analyzers can
//     propagate function-level facts ("allocates", "reaches a sink") from
//     callees to callers without re-walking bodies.
//
// Analyzers opt in by listing analysis.NeedDataflow in Analyzer.Requires;
// the driver and the analysistest harness then populate Pass.Dataflow with
// one Info per package. Soundness posture: the layer over-approximates (a
// tainted expression anywhere in an assignment chain taints the whole
// chain, any syntactic call edge counts) and never tracks aliasing through
// pointers or containers — the analyzers built on it prefer a rare
// explained //mpgraph:allow over a missed nondeterminism bug.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Info is the dataflow summary of one type-checked package.
type Info struct {
	Fset      *token.FileSet
	TypesInfo *types.Info

	// Funcs indexes every declared function and method by its type-checker
	// object.
	Funcs map[types.Object]*Func
	// Decls maps each function declaration to its summary (same values as
	// Funcs, keyed by syntax for analyzers walking files).
	Decls map[*ast.FuncDecl]*Func

	flows map[*ast.FuncDecl]*Flow
}

// Func is the call-graph node for one declared function or method.
type Func struct {
	Obj  types.Object
	Decl *ast.FuncDecl
	// Callees lists every call site in the body whose callee resolved to a
	// named function or method object (any package), in source order.
	// Calls through bare function values resolve to nil objects and are
	// recorded with a nil Obj so analyzers can treat them as unknown.
	Callees []CallSite
}

// CallSite is one syntactic call inside a function body.
type CallSite struct {
	Call *ast.CallExpr
	// Obj is the resolved callee (a *types.Func for functions, methods and
	// interface methods; a *types.Var for func-typed variables and fields;
	// nil when the callee is an anonymous expression such as an immediately
	// invoked literal).
	Obj types.Object
}

// New builds the package summary: one call-graph node per declared function.
// Reaching-definition indexes are computed lazily per function by FuncFlow.
func New(fset *token.FileSet, files []*ast.File, info *types.Info) *Info {
	in := &Info{
		Fset:      fset,
		TypesInfo: info,
		Funcs:     map[types.Object]*Func{},
		Decls:     map[*ast.FuncDecl]*Func{},
		flows:     map[*ast.FuncDecl]*Flow{},
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &Func{Obj: info.Defs[fd.Name], Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn.Callees = append(fn.Callees, CallSite{Call: call, Obj: Callee(info, call)})
				return true
			})
			if fn.Obj != nil {
				in.Funcs[fn.Obj] = fn
			}
			in.Decls[fd] = fn
		}
	}
	return in
}

// Callee resolves a call expression to the object it invokes, unwrapping
// parentheses and generic instantiations. Returns nil for calls of anonymous
// function expressions and for builtins without objects.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return Callee(info, &ast.CallExpr{Fun: e.X})
	case *ast.IndexListExpr: // generic instantiation f[T1, T2](...)
		return Callee(info, &ast.CallExpr{Fun: e.X})
	default:
		return nil
	}
}

// Closure extends base transitively caller-ward over the same-package call
// graph: the result contains every declared function that is in base or
// calls (directly or through other declared functions) one that is. base is
// not mutated. Propagation is a deterministic fixpoint — edge and iteration
// order cannot change the resulting set.
func (in *Info) Closure(base map[types.Object]bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	for obj, v := range base {
		if v {
			out[obj] = true
		}
	}
	// Fixpoint over a package-sized graph: at most |Funcs| rounds.
	for changed := true; changed; {
		changed = false
		for obj, fn := range in.Funcs {
			if out[obj] {
				continue
			}
			for _, cs := range fn.Callees {
				if cs.Obj != nil && out[cs.Obj] {
					out[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// SortedFuncs returns the package's declared functions in source position
// order, for analyzers that must report in a stable sequence.
func (in *Info) SortedFuncs() []*Func {
	out := make([]*Func, 0, len(in.Decls))
	for _, fn := range in.Decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// Flow is the reaching-definition index of one function body: for every
// object assigned anywhere in the body (parameters and named results are
// included with no defining expressions), the expressions that may define
// it. Chains are flow-insensitive: an assignment anywhere in the body
// reaches every use, which over-approximates loops correctly and never
// misses a definition.
type Flow struct {
	Decl *ast.FuncDecl
	// Defs maps each assigned object to every expression assigned to it.
	Defs map[types.Object][]ast.Expr
}

// FuncFlow returns the (memoised) reaching-definition index for fd.
func (in *Info) FuncFlow(fd *ast.FuncDecl) *Flow {
	if f, ok := in.flows[fd]; ok {
		return f
	}
	f := &Flow{Decl: fd, Defs: map[types.Object][]ast.Expr{}}
	if fd.Body != nil {
		collectDefs(in.TypesInfo, fd.Body, f.Defs)
	}
	in.flows[fd] = f
	return f
}

// BlockFlow builds a reaching-definition index for an arbitrary statement
// (a loop body, a closure body) outside the per-function cache.
func (in *Info) BlockFlow(body ast.Node) *Flow {
	f := &Flow{Defs: map[types.Object][]ast.Expr{}}
	collectDefs(in.TypesInfo, body, f.Defs)
	return f
}

// collectDefs records every ident := / = / op= / var / range definition in
// the subtree.
func collectDefs(info *types.Info, root ast.Node, defs map[types.Object][]ast.Expr) {
	addDef := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || rhs == nil {
			return
		}
		defs[obj] = append(defs[obj], rhs)
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					addDef(lhs, s.Rhs[i])
				}
			} else if len(s.Rhs) == 1 {
				// Tuple assignment: every lhs is defined by the one rhs.
				for _, lhs := range s.Lhs {
					addDef(lhs, s.Rhs[0])
				}
			}
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					switch {
					case len(vs.Values) == len(vs.Names):
						addDef(name, vs.Values[i])
					case len(vs.Values) == 1:
						addDef(name, vs.Values[0])
					}
				}
			}
		case *ast.RangeStmt:
			// Key and value are defined by the ranged expression.
			if s.Key != nil {
				addDef(s.Key, s.X)
			}
			if s.Value != nil {
				addDef(s.Value, s.X)
			}
		}
		return true
	})
}

// Tainted computes the fixpoint of taint over the flow's assignment chains:
// an object is tainted if it is seeded, or if any expression assigned to it
// is tainted (contains a seed expression or mentions a tainted object).
// seedObjs may be nil; isSeed may be nil.
func (f *Flow) Tainted(info *types.Info, seedObjs map[types.Object]bool, isSeed func(ast.Expr) bool) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for obj, v := range seedObjs {
		if v {
			tainted[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, exprs := range f.Defs {
			if tainted[obj] {
				continue
			}
			for _, e := range exprs {
				if ExprTainted(info, e, tainted, isSeed) {
					tainted[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return tainted
}

// ExprTainted reports whether expr contains a seed expression or mentions a
// tainted object.
func ExprTainted(info *types.Info, expr ast.Expr, tainted map[types.Object]bool, isSeed func(ast.Expr) bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && isSeed != nil && isSeed(e) {
			found = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
