package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"mpgraph/internal/analysis/dataflow"
)

// parse type-checks one in-memory file (no imports, so no importer needed)
// and builds its dataflow summary.
func parse(t *testing.T, src string) (*dataflow.Info, *types.Info, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return dataflow.New(fset, []*ast.File{f}, info), info, []*ast.File{f}
}

func funcDecl(t *testing.T, files []*ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

const taintSrc = `package x

func source() int { return 1 }

func chain() int {
	a := source()
	b := a + 1
	c := b * 2
	d := 5 // untainted
	_ = d
	var e int
	e += c
	return e
}
`

// TestTaintChain: taint from a seed call must flow through :=, binary ops
// and op-assign chains, and must not leak onto unrelated variables.
func TestTaintChain(t *testing.T) {
	in, info, files := parse(t, taintSrc)
	fd := funcDecl(t, files, "chain")
	flow := in.FuncFlow(fd)
	isSeed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		obj := dataflow.Callee(info, call)
		return obj != nil && obj.Name() == "source"
	}
	tainted := flow.Tainted(info, nil, isSeed)
	wantTainted := map[string]bool{"a": true, "b": true, "c": true, "e": true, "d": false}
	for name, want := range wantTainted {
		got := false
		for obj := range tainted {
			if obj.Name() == name {
				got = true
			}
		}
		if got != want {
			t.Errorf("taint(%s) = %v, want %v", name, got, want)
		}
	}
}

const rangeSrc = `package x

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

// TestRangeDefs: range clauses define their key object from the ranged
// expression, and the appended slice inherits the taint.
func TestRangeDefs(t *testing.T) {
	in, info, files := parse(t, rangeSrc)
	fd := funcDecl(t, files, "keys")
	flow := in.FuncFlow(fd)
	// Seed the map parameter object.
	var mObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "m" {
			mObj = obj
		}
	}
	if mObj == nil {
		t.Fatal("no object for m")
	}
	tainted := flow.Tainted(info, map[types.Object]bool{mObj: true}, nil)
	var gotK, gotOut bool
	for obj := range tainted {
		switch obj.Name() {
		case "k":
			gotK = true
		case "out":
			gotOut = true
		}
	}
	if !gotK || !gotOut {
		t.Fatalf("range taint: k=%v out=%v, want both true", gotK, gotOut)
	}
}

const callSrc = `package x

func alloc() []int { return make([]int, 4) }
func mid() []int   { return alloc() }
func top() []int   { return mid() }
func clean() int   { return 7 }
`

// TestClosure: caller-ward transitive closure over the package call graph.
func TestClosure(t *testing.T) {
	in, info, files := parse(t, callSrc)
	_ = files
	base := map[types.Object]bool{}
	for obj := range in.Funcs {
		if obj.Name() == "alloc" {
			base[obj] = true
		}
	}
	if len(base) != 1 {
		t.Fatalf("expected one seed func, got %d", len(base))
	}
	closed := in.Closure(base)
	want := map[string]bool{"alloc": true, "mid": true, "top": true, "clean": false}
	for name, wantIn := range want {
		gotIn := false
		for obj := range closed {
			if obj.Name() == name {
				gotIn = true
			}
		}
		if gotIn != wantIn {
			t.Errorf("closure(%s) = %v, want %v", name, gotIn, wantIn)
		}
	}
	_ = info
}

const methodValueSrc = `package x

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func use(c *counter) {
	f := c.bump
	f()
}
`

// TestMethodValueDef: binding a method value records the selector as the
// variable's reaching definition, and Callee on the indirect call resolves
// to the variable (not the method) — the hop the call-graph layer follows.
func TestMethodValueDef(t *testing.T) {
	in, info, files := parse(t, methodValueSrc)
	fd := funcDecl(t, files, "use")
	flow := in.FuncFlow(fd)

	var fObj types.Object
	for obj := range flow.Defs {
		if obj.Name() == "f" {
			fObj = obj
		}
	}
	if fObj == nil {
		t.Fatal("no reaching definition recorded for f")
	}
	defs := flow.Defs[fObj]
	if len(defs) != 1 {
		t.Fatalf("f has %d defs, want 1", len(defs))
	}
	sel, ok := defs[0].(*ast.SelectorExpr)
	if !ok {
		t.Fatalf("f's def is %T, want *ast.SelectorExpr", defs[0])
	}
	if obj := info.Uses[sel.Sel]; obj == nil || obj.Name() != "bump" {
		t.Errorf("method-value def resolves to %v, want bump", obj)
	}

	var indirect *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "f" {
				indirect = call
			}
		}
		return true
	})
	if indirect == nil {
		t.Fatal("no f() call found")
	}
	if obj := dataflow.Callee(info, indirect); obj != fObj {
		t.Errorf("Callee(f()) = %v, want the variable f", obj)
	}
}

const deferSrc = `package x

func source() int { return 1 }

func late() int {
	x := 0
	defer func() {
		x = source()
	}()
	return x
}
`

// TestDeferredAssignment: an assignment inside a deferred closure still
// reaches the enclosing function's definition index — deferred code is the
// classic place unlock/cleanup writes hide.
func TestDeferredAssignment(t *testing.T) {
	in, info, files := parse(t, deferSrc)
	fd := funcDecl(t, files, "late")
	flow := in.FuncFlow(fd)
	isSeed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		obj := dataflow.Callee(info, call)
		return obj != nil && obj.Name() == "source"
	}
	tainted := flow.Tainted(info, nil, isSeed)
	found := false
	for obj := range tainted {
		if obj.Name() == "x" {
			found = true
		}
	}
	if !found {
		t.Error("x assigned in a deferred closure is not tainted")
	}
}

const loopReassignSrc = `package x

func a() {}
func b() {}

func pick(n int) {
	f := a
	for i := 0; i < n; i++ {
		f = b
		f()
	}
	f()
}
`

// TestLoopReassignedFuncValue: a function value reassigned inside a loop
// keeps BOTH reaching definitions — flow-insensitivity is the conservative
// contract the call-graph's func-value edges rely on.
func TestLoopReassignedFuncValue(t *testing.T) {
	in, info, files := parse(t, loopReassignSrc)
	fd := funcDecl(t, files, "pick")
	flow := in.FuncFlow(fd)
	var defs []ast.Expr
	for obj, ds := range flow.Defs {
		if obj.Name() == "f" {
			defs = ds
		}
	}
	if len(defs) != 2 {
		t.Fatalf("f has %d reaching defs, want 2 (initial a, loop-assigned b)", len(defs))
	}
	got := map[string]bool{}
	for _, d := range defs {
		if id, ok := d.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				got[obj.Name()] = true
			}
		}
	}
	if !got["a"] || !got["b"] {
		t.Errorf("reaching defs resolve to %v, want both a and b", got)
	}
}

const genericSrc = `package x

func identity[T any](v T) T { return v }

func callers() (int, string) {
	return identity(1), identity("s")
}
`

// TestGenericCallee: Callee on instantiated calls resolves both uses to the
// single generic declaration — the object the call graph keys its Origin
// node on.
func TestGenericCallee(t *testing.T) {
	in, info, files := parse(t, genericSrc)
	fd := funcDecl(t, files, "callers")
	_ = in
	var objs []types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			objs = append(objs, dataflow.Callee(info, call))
		}
		return true
	})
	if len(objs) != 2 {
		t.Fatalf("found %d calls, want 2", len(objs))
	}
	if objs[0] == nil || objs[0] != objs[1] {
		t.Fatalf("instantiated calls resolve to %v and %v, want one shared generic object", objs[0], objs[1])
	}
	fn, ok := objs[0].(*types.Func)
	if !ok || fn.Name() != "identity" {
		t.Errorf("Callee = %v, want the generic identity func", objs[0])
	}
	if fn.Origin() != fn {
		t.Errorf("Uses-resolved generic is not its own Origin: %v", fn)
	}
}
