package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"mpgraph/internal/analysis/dataflow"
)

// parse type-checks one in-memory file (no imports, so no importer needed)
// and builds its dataflow summary.
func parse(t *testing.T, src string) (*dataflow.Info, *types.Info, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return dataflow.New(fset, []*ast.File{f}, info), info, []*ast.File{f}
}

func funcDecl(t *testing.T, files []*ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

const taintSrc = `package x

func source() int { return 1 }

func chain() int {
	a := source()
	b := a + 1
	c := b * 2
	d := 5 // untainted
	_ = d
	var e int
	e += c
	return e
}
`

// TestTaintChain: taint from a seed call must flow through :=, binary ops
// and op-assign chains, and must not leak onto unrelated variables.
func TestTaintChain(t *testing.T) {
	in, info, files := parse(t, taintSrc)
	fd := funcDecl(t, files, "chain")
	flow := in.FuncFlow(fd)
	isSeed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		obj := dataflow.Callee(info, call)
		return obj != nil && obj.Name() == "source"
	}
	tainted := flow.Tainted(info, nil, isSeed)
	wantTainted := map[string]bool{"a": true, "b": true, "c": true, "e": true, "d": false}
	for name, want := range wantTainted {
		got := false
		for obj := range tainted {
			if obj.Name() == name {
				got = true
			}
		}
		if got != want {
			t.Errorf("taint(%s) = %v, want %v", name, got, want)
		}
	}
}

const rangeSrc = `package x

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

// TestRangeDefs: range clauses define their key object from the ranged
// expression, and the appended slice inherits the taint.
func TestRangeDefs(t *testing.T) {
	in, info, files := parse(t, rangeSrc)
	fd := funcDecl(t, files, "keys")
	flow := in.FuncFlow(fd)
	// Seed the map parameter object.
	var mObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "m" {
			mObj = obj
		}
	}
	if mObj == nil {
		t.Fatal("no object for m")
	}
	tainted := flow.Tainted(info, map[types.Object]bool{mObj: true}, nil)
	var gotK, gotOut bool
	for obj := range tainted {
		switch obj.Name() {
		case "k":
			gotK = true
		case "out":
			gotOut = true
		}
	}
	if !gotK || !gotOut {
		t.Fatalf("range taint: k=%v out=%v, want both true", gotK, gotOut)
	}
}

const callSrc = `package x

func alloc() []int { return make([]int, 4) }
func mid() []int   { return alloc() }
func top() []int   { return mid() }
func clean() int   { return 7 }
`

// TestClosure: caller-ward transitive closure over the package call graph.
func TestClosure(t *testing.T) {
	in, info, files := parse(t, callSrc)
	_ = files
	base := map[types.Object]bool{}
	for obj := range in.Funcs {
		if obj.Name() == "alloc" {
			base[obj] = true
		}
	}
	if len(base) != 1 {
		t.Fatalf("expected one seed func, got %d", len(base))
	}
	closed := in.Closure(base)
	want := map[string]bool{"alloc": true, "mid": true, "top": true, "clean": false}
	for name, wantIn := range want {
		gotIn := false
		for obj := range closed {
			if obj.Name() == name {
				gotIn = true
			}
		}
		if gotIn != wantIn {
			t.Errorf("closure(%s) = %v, want %v", name, gotIn, wantIn)
		}
	}
	_ = info
}
