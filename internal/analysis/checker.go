package analysis

import (
	"fmt"
	"io"
)

// RunAnalyzers applies every analyzer (honouring Match) to every package,
// filters //mpgraph:allow-suppressed findings, prints the rest to w in
// file:line:col style, and returns the number of findings printed.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, w io.Writer) (int, error) {
	total := 0
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, &diags)
			if err := a.Run(pass); err != nil {
				return total, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		if len(diags) == 0 {
			continue
		}
		sup := CollectSuppressions(pkg.Fset, pkg.Files)
		for _, d := range Filter(pkg.Fset, diags, sup) {
			fmt.Fprintf(w, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			total++
		}
	}
	return total, nil
}
