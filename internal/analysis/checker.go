package analysis

import (
	"fmt"
	"io"

	"mpgraph/internal/analysis/dataflow"
)

// Analyze applies every analyzer (honouring Match) to every package and
// returns the surviving findings: //mpgraph:allow-suppressed diagnostics are
// dropped, repeats at one position are collapsed, and the result is sorted
// by file position — the packages arrive sorted from the loader and share
// its FileSet, so the concatenated order is stable run to run. Shared facts
// (the dataflow summary) are computed once per package, and only when some
// analyzer that runs on it asks.
func Analyze(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var df *dataflow.Info
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, &diags)
			if a.NeedsDataflow() {
				if df == nil {
					df = dataflow.New(pkg.Fset, pkg.Files, pkg.Info)
				}
				pass.Dataflow = df
			}
			if err := a.Run(pass); err != nil {
				return all, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		if len(diags) == 0 {
			continue
		}
		sup := CollectSuppressions(pkg.Fset, pkg.Files)
		all = append(all, Filter(pkg.Fset, diags, sup)...)
	}
	return all, nil
}

// RunAnalyzers runs Analyze and prints the findings to w in file:line:col
// style, returning the number printed. Every package shares the loader's
// FileSet, so positions from any package resolve against any other's.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, w io.Writer) (int, error) {
	if len(pkgs) == 0 {
		return 0, nil
	}
	diags, err := Analyze(pkgs, analyzers)
	if len(diags) > 0 {
		fset := pkgs[0].Fset
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	return len(diags), err
}
