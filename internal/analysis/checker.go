package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mpgraph/internal/analysis/callgraph"
	"mpgraph/internal/analysis/cfg"
	"mpgraph/internal/analysis/dataflow"
	"mpgraph/internal/analysis/facts"
)

// Options tunes a driver run beyond the target list.
type Options struct {
	// All is every loaded module package — the analysis targets plus the
	// module dependencies the loader pulled in to type-check them. The
	// fact layer summarises all of them (in topological import order) so
	// cross-package obligations resolve even when the target set is a
	// slice of the module. Empty means "just the targets".
	All []*Package
	// FactsDir, when non-empty, serialises the computed fact store there:
	// one byte-deterministic JSON file per package.
	FactsDir string
	// Complete declares that the targets cover the whole module (the
	// "./..." invocation) — the precondition for whole-program
	// absence checks in Analyzer.Finish.
	Complete bool
}

// Analyze applies every analyzer to every package with default options.
func Analyze(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return AnalyzeOpts(pkgs, analyzers, Options{})
}

// AnalyzeOpts applies every analyzer (honouring Match) to every package and
// returns the surviving findings: //mpgraph:allow-suppressed diagnostics are
// dropped, repeats at one position are collapsed, and the result is sorted
// globally by (package path, file, offset, analyzer) so multi-package runs
// are byte-deterministic regardless of load order. Shared facts (the
// dataflow summary, the CFG cache, the call graph) are computed once per
// package and shared across every analyzer that asks.
//
// When any analyzer lists NeedFacts (or has a Finish hook), or a FactsDir
// is requested, the cross-package fact layer runs first: every package in
// opt.All is summarised in topological import order, so each package's
// computation sees its module dependencies' final facts. After the
// per-package runs, each analyzer's Finish hook fires once with the full
// store for whole-program checks.
func AnalyzeOpts(pkgs []*Package, analyzers []*Analyzer, opt Options) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	all := opt.All
	if len(all) == 0 {
		all = pkgs
	}

	needFacts := opt.FactsDir != ""
	for _, a := range analyzers {
		if a.Needs(NeedFacts) || a.Finish != nil {
			needFacts = true
		}
	}
	var store *facts.Store
	if needFacts {
		store = facts.NewStore()
		for _, p := range topoOrder(all) {
			store.Add(facts.Compute(p.Fset, p.Files, p.Types, p.Info, store))
		}
		if opt.FactsDir != "" {
			if err := store.WriteDir(opt.FactsDir); err != nil {
				return nil, fmt.Errorf("analysis: writing facts: %w", err)
			}
		}
	}

	supByPath := map[string]Suppressions{}
	supFor := func(pkg *Package) Suppressions {
		s, ok := supByPath[pkg.Path]
		if !ok {
			s = CollectSuppressions(pkg.Fset, pkg.Files)
			supByPath[pkg.Path] = s
		}
		return s
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		var df *dataflow.Info
		var cg *callgraph.Graph
		var cf *cfg.Info
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, &diags)
			if a.NeedsDataflow() {
				if df == nil {
					df = dataflow.New(pkg.Fset, pkg.Files, pkg.Info)
				}
				pass.Dataflow = df
			}
			if a.Needs(NeedCFG) {
				if cf == nil {
					cf = cfg.NewInfo(pkg.Info)
				}
				pass.CFG = cf
			}
			if a.Needs(NeedCallGraph) {
				if cg == nil {
					cg = callgraph.New(pkg.Types, df)
				}
				pass.CallGraph = cg
			}
			if a.Needs(NeedFacts) {
				pass.Facts = store
			}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		if len(diags) == 0 {
			continue
		}
		for _, d := range Filter(pkg.Fset, diags, supFor(pkg)) {
			d.Pkg = pkg.Path
			out = append(out, d)
		}
	}

	// Whole-program phase: Finish hooks see every package and the full
	// store. Their findings go through the owning package's suppressions,
	// then join the global sort like any other diagnostic.
	fset := pkgs[0].Fset
	allByPath := map[string]*Package{}
	for _, p := range all {
		allByPath[p.Path] = p
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		var fdiags []Diagnostic
		fp := &FinishPass{
			Analyzer: a,
			Fset:     fset,
			Packages: topoOrder(all),
			Facts:    store,
			Complete: opt.Complete,
			report:   func(d Diagnostic) { fdiags = append(fdiags, d) },
		}
		if err := a.Finish(fp); err != nil {
			return out, fmt.Errorf("analysis: %s finish: %w", a.Name, err)
		}
		for _, d := range fdiags {
			if pkg, ok := allByPath[d.Pkg]; ok && supFor(pkg).Allowed(fset, d.Pos, d.Analyzer) {
				continue
			}
			out = append(out, d)
		}
	}

	if len(out) > 1 {
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].Pkg != out[j].Pkg {
				return out[i].Pkg < out[j].Pkg
			}
			pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Offset != pj.Offset {
				return pi.Offset < pj.Offset
			}
			if out[i].Analyzer != out[j].Analyzer {
				return out[i].Analyzer < out[j].Analyzer
			}
			return out[i].Message < out[j].Message
		})
	}
	return out, nil
}

// topoOrder returns the packages in topological import order (dependencies
// before importers), deterministically: ties and sibling visits resolve by
// import path. Packages outside the set are ignored — Go's import graph is
// acyclic, so a simple DFS suffices.
func topoOrder(all []*Package) []*Package {
	byPath := map[string]*Package{}
	paths := make([]string, 0, len(all))
	for _, p := range all {
		if _, ok := byPath[p.Path]; !ok {
			paths = append(paths, p.Path)
		}
		byPath[p.Path] = p
	}
	sort.Strings(paths)
	visited := map[string]bool{}
	out := make([]*Package, 0, len(all))
	var visit func(p *Package)
	visit = func(p *Package) {
		if visited[p.Path] {
			return
		}
		visited[p.Path] = true
		imps := p.Types.Imports()
		deps := make([]string, 0, len(imps))
		for _, imp := range imps {
			if _, ok := byPath[imp.Path()]; ok {
				deps = append(deps, imp.Path())
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			visit(byPath[dep])
		}
		out = append(out, p)
	}
	for _, path := range paths {
		visit(byPath[path])
	}
	return out
}

// RunAnalyzers runs AnalyzeOpts and prints the findings to w in
// file:line:col style, returning the number printed. Every package shares
// the loader's FileSet, so positions from any package resolve against any
// other's.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, w io.Writer, opt Options) (int, error) {
	if len(pkgs) == 0 {
		return 0, nil
	}
	diags, err := AnalyzeOpts(pkgs, analyzers, opt)
	if len(diags) > 0 {
		fset := pkgs[0].Fset
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	return len(diags), err
}

// JSONDiagnostic is the -json wire form of one finding: one object per
// line, stable field order, no timestamps — the artifact is diffable run to
// run like every other mpgraph report.
type JSONDiagnostic struct {
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
	// Provenance is the cross-package fact chain behind the finding
	// (outermost callee first, leaf cause last), when the analyzer
	// recorded one.
	Provenance []string `json:"provenance,omitempty"`
}

// RunAnalyzersJSON runs AnalyzeOpts and writes one JSON object per finding
// to w, returning the number written.
func RunAnalyzersJSON(pkgs []*Package, analyzers []*Analyzer, w io.Writer, opt Options) (int, error) {
	if len(pkgs) == 0 {
		return 0, nil
	}
	diags, err := AnalyzeOpts(pkgs, analyzers, opt)
	enc := json.NewEncoder(w)
	fset := pkgs[0].Fset
	for _, d := range diags {
		p := fset.Position(d.Pos)
		jd := JSONDiagnostic{
			Package:    d.Pkg,
			File:       p.Filename,
			Line:       p.Line,
			Col:        p.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Fixable:    len(d.SuggestedFixes) > 0,
			Provenance: d.Provenance,
		}
		if encErr := enc.Encode(jd); encErr != nil && err == nil {
			err = encErr
		}
	}
	return len(diags), err
}
