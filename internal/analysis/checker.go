package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mpgraph/internal/analysis/callgraph"
	"mpgraph/internal/analysis/cfg"
	"mpgraph/internal/analysis/dataflow"
)

// Analyze applies every analyzer (honouring Match) to every package and
// returns the surviving findings: //mpgraph:allow-suppressed diagnostics are
// dropped, repeats at one position are collapsed, and the result is sorted
// globally by (package path, file, offset, analyzer) so multi-package runs
// are byte-deterministic regardless of load order. Shared facts (the
// dataflow summary, the CFG cache, the call graph) are computed once per
// package, and only when some analyzer that runs on it asks.
func Analyze(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var df *dataflow.Info
		var cg *callgraph.Graph
		var cf *cfg.Info
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, &diags)
			if a.NeedsDataflow() {
				if df == nil {
					df = dataflow.New(pkg.Fset, pkg.Files, pkg.Info)
				}
				pass.Dataflow = df
			}
			if a.Needs(NeedCFG) {
				if cf == nil {
					cf = cfg.NewInfo(pkg.Info)
				}
				pass.CFG = cf
			}
			if a.Needs(NeedCallGraph) {
				if cg == nil {
					cg = callgraph.New(pkg.Types, df)
				}
				pass.CallGraph = cg
			}
			if err := a.Run(pass); err != nil {
				return all, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		if len(diags) == 0 {
			continue
		}
		sup := CollectSuppressions(pkg.Fset, pkg.Files)
		for _, d := range Filter(pkg.Fset, diags, sup) {
			d.Pkg = pkg.Path
			all = append(all, d)
		}
	}
	if len(all) > 1 {
		fset := pkgs[0].Fset
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].Pkg != all[j].Pkg {
				return all[i].Pkg < all[j].Pkg
			}
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Offset != pj.Offset {
				return pi.Offset < pj.Offset
			}
			if all[i].Analyzer != all[j].Analyzer {
				return all[i].Analyzer < all[j].Analyzer
			}
			return all[i].Message < all[j].Message
		})
	}
	return all, nil
}

// RunAnalyzers runs Analyze and prints the findings to w in file:line:col
// style, returning the number printed. Every package shares the loader's
// FileSet, so positions from any package resolve against any other's.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, w io.Writer) (int, error) {
	if len(pkgs) == 0 {
		return 0, nil
	}
	diags, err := Analyze(pkgs, analyzers)
	if len(diags) > 0 {
		fset := pkgs[0].Fset
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	return len(diags), err
}

// JSONDiagnostic is the -json wire form of one finding: one object per
// line, stable field order, no timestamps — the artifact is diffable run to
// run like every other mpgraph report.
type JSONDiagnostic struct {
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

// RunAnalyzersJSON runs Analyze and writes one JSON object per finding to
// w, returning the number written.
func RunAnalyzersJSON(pkgs []*Package, analyzers []*Analyzer, w io.Writer) (int, error) {
	if len(pkgs) == 0 {
		return 0, nil
	}
	diags, err := Analyze(pkgs, analyzers)
	enc := json.NewEncoder(w)
	fset := pkgs[0].Fset
	for _, d := range diags {
		p := fset.Position(d.Pos)
		jd := JSONDiagnostic{
			Package:  d.Pkg,
			File:     p.Filename,
			Line:     p.Line,
			Col:      p.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fixable:  len(d.SuggestedFixes) > 0,
		}
		if encErr := enc.Encode(jd); encErr != nil && err == nil {
			err = encErr
		}
	}
	return len(diags), err
}
