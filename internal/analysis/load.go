package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. "mpgraph/internal/sim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses, and type-checks the module's packages using a
// source importer, so no compiled export data or external tooling is
// required. Standard-library imports are delegated to go/importer's
// "source" compiler; intra-module imports are resolved against the module
// root and type-checked recursively with memoisation.
type Loader struct {
	Fset *token.FileSet

	root    string // module root directory (holds go.mod)
	modpath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modpath: mod,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer for the type-checker: module-internal
// paths load recursively, everything else goes to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load resolves patterns ("./...", "./internal/...", or plain package
// directories relative to the module root) into loaded packages.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = "./"
		}
		base := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			// An explicitly named package must exist and contain Go files;
			// silently matching nothing would let a CI typo pass as clean.
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("package pattern %q matches no Go package", pat)
			}
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// Skip testdata (fixture sources are not part of the build),
			// hidden directories, and nested modules.
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var out []*Package
	for dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Loaded returns every module package the loader has type-checked so far —
// the requested targets plus the module dependencies pulled in to resolve
// their imports — sorted by import path. The driver summarises this whole
// set in the fact layer, so facts are computed once per package per run no
// matter how many targets import it.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modpath, nil
	}
	return l.modpath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && buildableName(name) {
			return true
		}
	}
	return false
}

// buildableName reports whether name is a non-test Go source file that the
// host platform builds, by the filename rules alone (//go:build lines are
// checked after parsing, in load).
func buildableName(name string) bool {
	if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
		return false
	}
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		matchFileName(name)
}

// load parses and type-checks one module package (non-test files only),
// memoised by import path.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.modpath {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath+"/")))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !buildableName(name) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %s", path, positionedErrors(err))
		}
		if !satisfiesGoBuild(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	// Collect every type error with its file:line:col position instead of
	// stopping at the first: a CI failure that names only the package makes
	// the developer rerun the type-checker by hand to find the line.
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			// types.Error.Error() already renders "file:line:col: msg";
			// secondary errors (prefixed "\t") ride along with their primary.
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(clipErrors(typeErrs, 10), "\n\t"))
	}
	if err != nil {
		// Importer failures and other non-positioned errors bypass the
		// Error callback.
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// positionedErrors renders a parse failure with every contained position: a
// scanner.ErrorList's Error() shows only the first error plus a count,
// which hides the rest of the lines the developer has to fix.
func positionedErrors(err error) string {
	list, ok := err.(scanner.ErrorList)
	if !ok {
		return err.Error()
	}
	msgs := make([]string, len(list))
	for i, e := range list {
		msgs[i] = e.Error() // "file:line:col: msg"
	}
	return strings.Join(clipErrors(msgs, 10), "\n\t")
}

// clipErrors bounds an error listing at max entries.
func clipErrors(msgs []string, max int) []string {
	if len(msgs) <= max {
		return msgs
	}
	out := append([]string{}, msgs[:max]...)
	return append(out, fmt.Sprintf("... and %d more", len(msgs)-max))
}
