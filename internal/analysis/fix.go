package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// FixResult summarises one ApplyFixes run.
type FixResult struct {
	// Files maps each edited filename to its rewritten content.
	Files map[string][]byte
	// Applied counts the suggested fixes that were applied in full.
	Applied int
	// Skipped counts fixes dropped because an edit overlapped one already
	// applied (rerunning -fix picks them up once the tree has settled).
	Skipped int
}

// ApplyFixes materialises the diagnostics' suggested fixes as file rewrites.
// Only the first fix of each diagnostic is considered (the analyzer's
// preferred rewrite). Edits are applied per file in ascending position
// order; a fix whose edits overlap an already-accepted edit is skipped
// whole, so the result of one pass is always a valid non-conflicting
// patch set. readFile defaults to os.ReadFile; tests inject fixture
// sources.
//
// The caller decides what to do with the result: the driver's -fix mode
// writes Files back to disk, analysistest diffs them against .golden
// fixtures.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, readFile func(string) ([]byte, error)) (*FixResult, error) {
	if readFile == nil {
		readFile = os.ReadFile
	}
	type edit struct {
		start, end int // byte offsets
		newText    string
	}
	type fix struct {
		file  string
		edits []edit
	}

	// Resolve each diagnostic's preferred fix to byte-offset edits.
	var fixes []fix
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		sf := d.SuggestedFixes[0]
		if len(sf.TextEdits) == 0 {
			continue
		}
		var fx fix
		ok := true
		for _, te := range sf.TextEdits {
			pos, end := fset.Position(te.Pos), fset.Position(te.End)
			if !pos.IsValid() || !end.IsValid() || pos.Filename != end.Filename || end.Offset < pos.Offset {
				ok = false
				break
			}
			if fx.file == "" {
				fx.file = pos.Filename
			}
			if pos.Filename != fx.file {
				ok = false // fixes are single-file by contract
				break
			}
			fx.edits = append(fx.edits, edit{start: pos.Offset, end: end.Offset, newText: te.NewText})
		}
		if ok && fx.file != "" {
			fixes = append(fixes, fx)
		}
	}

	res := &FixResult{Files: map[string][]byte{}}
	if len(fixes) == 0 {
		return res, nil
	}

	// Accept fixes in deterministic order (file, first edit position),
	// dropping any whose edits overlap an accepted edit in the same file.
	sort.SliceStable(fixes, func(i, j int) bool {
		if fixes[i].file != fixes[j].file {
			return fixes[i].file < fixes[j].file
		}
		return fixes[i].edits[0].start < fixes[j].edits[0].start
	})
	accepted := map[string][]edit{}
	for _, fx := range fixes {
		conflict := false
		var fresh []edit
		for _, e := range fx.edits {
			dup := false
			for _, a := range accepted[fx.file] {
				if e == a {
					// Byte-identical edits merge: several fixes in one file
					// may all insert the same import, and that agreement is
					// not a conflict.
					dup = true
					break
				}
				// Two ranges overlap unless one ends at or before the other
				// starts; differing insertions at the same offset conflict.
				if e.start < a.end && a.start < e.end {
					conflict = true
					break
				}
				if e.start == e.end && a.start == a.end && e.start == a.start {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
			if !dup {
				fresh = append(fresh, e)
			}
		}
		if conflict {
			res.Skipped++
			continue
		}
		accepted[fx.file] = append(accepted[fx.file], fresh...)
		res.Applied++
	}

	// Rewrite each touched file back-to-front so earlier offsets stay valid
	// (files in sorted order so partial-failure errors are deterministic).
	files := make([]string, 0, len(accepted))
	for file := range accepted {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := accepted[file]
		src, err := readFile(file)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes to %s: %w", file, err)
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start > edits[j].start
			}
			return edits[i].end > edits[j].end
		})
		out := src
		for _, e := range edits {
			if e.start < 0 || e.end > len(out) {
				return nil, fmt.Errorf("analysis: fix edit [%d,%d) outside %s (%d bytes)", e.start, e.end, file, len(out))
			}
			var next []byte
			next = append(next, out[:e.start]...)
			next = append(next, e.newText...)
			next = append(next, out[e.end:]...)
			out = next
		}
		res.Files[file] = out
	}
	return res, nil
}
