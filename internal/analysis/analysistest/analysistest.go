// Package analysistest is the fixture-driven test harness for mpgraph's
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// packages live under testdata/src/<pkg>/, and lines that should trigger a
// finding carry a trailing comment of the form
//
//	expr // want "regexp"
//
// (several "..." patterns on one line expect several findings). The harness
// type-checks each fixture against the standard library with a source
// importer, runs the analyzer, applies //mpgraph:allow suppression exactly
// as the driver does, and diffs findings against expectations. Analyzer
// Match functions are deliberately ignored so fixtures can use short
// package names.
//
// Fixtures may import each other: an import path with no dot or slash that
// names a sibling directory under testdata/src resolves to that fixture
// package, so cross-package contracts (noalloc obligation chains, ctxflow
// deadline propagation, injectpoint rosters) are testable end to end. For
// analyzers that list analysis.NeedFacts, the harness computes the fact
// store over the target fixture and its fixture dependencies bottom-up,
// exactly as the driver would; an analyzer's Finish hook then runs over
// that closure with Complete=true, and want comments in dependency files
// are honoured. One token.FileSet and one stdlib source importer are shared
// across every fixture in the test binary, so the standard library is
// type-checked once per process rather than once per fixture package.
//
// RunFix additionally exercises an analyzer's suggested fixes: the fixture
// package is rewritten with ApplyFixes and every changed file is diffed
// against its committed <file>.golden sibling; the fixed sources are then
// re-analysed to prove the fixes are idempotent (a second -fix pass changes
// nothing). Set MPGRAPH_UPDATE_GOLDEN=1 to regenerate goldens after an
// intentional fix-format change.
package analysistest

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/callgraph"
	"mpgraph/internal/analysis/cfg"
	"mpgraph/internal/analysis/dataflow"
	"mpgraph/internal/analysis/facts"
)

// wantRE matches one or more double- or backtick-quoted patterns after
// "// want".
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

// quotedRE extracts the individual quoted patterns from a want clause.
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// The FileSet and stdlib importer are process-wide: every fixture in the
// test binary shares them, so the standard library's dependency packages
// are parsed and type-checked once, not once per fixture.
var (
	sharedFset = token.NewFileSet()
	sharedStd  = importer.ForCompiler(sharedFset, "source", nil)
)

// Run checks the analyzer against every named fixture package under
// testdata/src.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := newFxLoader(testdata, nil)
	for _, pkg := range pkgs {
		fx, err := l.load(pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		checkWants(t, l, fx, analyze(t, l, fx, a))
	}
}

// fixture is one parsed and type-checked fixture package.
type fixture struct {
	dir   string
	name  string
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

// pkg adapts the fixture to the driver's package shape.
func (fx *fixture) pkg() *analysis.Package {
	return &analysis.Package{Path: fx.name, Dir: fx.dir, Fset: sharedFset,
		Files: fx.files, Types: fx.tpkg, Info: fx.info}
}

// fxLoader resolves fixture-local imports to sibling directories under
// testdata/src (memoised), delegating everything else to the shared stdlib
// source importer. override redirects one package name to another directory
// (RunFix re-analyses fixed sources from a scratch dir while its fixture
// dependencies stay in testdata).
type fxLoader struct {
	testdata string
	override map[string]string
	pkgs     map[string]*fixture
	loading  map[string]bool
	// order records load completion order: a fixture's dependencies finish
	// loading before it does, so this is a topological order for free.
	order []*fixture
}

func newFxLoader(testdata string, override map[string]string) *fxLoader {
	return &fxLoader{testdata: testdata, override: override,
		pkgs: map[string]*fixture{}, loading: map[string]bool{}}
}

// Import implements types.Importer.
func (l *fxLoader) Import(path string) (*types.Package, error) {
	if fixtureName(path) {
		if dir := l.dirFor(path); dir != "" {
			fx, err := l.load(path)
			if err != nil {
				return nil, err
			}
			return fx.tpkg, nil
		}
	}
	return sharedStd.Import(path)
}

// fixtureName reports whether an import path could name a fixture: a bare
// name with no separator or dot ("a", "bdep", "resilience").
func fixtureName(path string) bool {
	return !strings.ContainsAny(path, "./")
}

// dirFor returns the directory holding the named fixture, or "".
func (l *fxLoader) dirFor(name string) string {
	if dir, ok := l.override[name]; ok {
		return dir
	}
	dir := filepath.Join(l.testdata, "src", name)
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				return dir
			}
		}
	}
	return ""
}

// load parses and type-checks one fixture package, memoised by name.
func (l *fxLoader) load(name string) (*fixture, error) {
	if fx, ok := l.pkgs[name]; ok {
		return fx, nil
	}
	if l.loading[name] {
		return nil, fmt.Errorf("analysistest: fixture import cycle through %s", name)
	}
	l.loading[name] = true
	defer delete(l.loading, name)

	dir := l.dirFor(name)
	if dir == "" {
		return nil, fmt.Errorf("analysistest: no fixture files for %s under %s", name, filepath.Join(l.testdata, "src"))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(sharedFset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(name, sharedFset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", name, err)
	}
	fx := &fixture{dir: dir, name: name, files: files, tpkg: tpkg, info: info}
	l.pkgs[name] = fx
	l.order = append(l.order, fx)
	return fx, nil
}

// closure returns fx plus its transitive fixture dependencies, in load
// completion order (dependencies first).
func (l *fxLoader) closure(fx *fixture) []*fixture {
	in := map[string]bool{}
	var mark func(fx *fixture)
	mark = func(fx *fixture) {
		if in[fx.name] {
			return
		}
		in[fx.name] = true
		for _, imp := range fx.tpkg.Imports() {
			if dep, ok := l.pkgs[imp.Path()]; ok {
				mark(dep)
			}
		}
	}
	mark(fx)
	var out []*fixture
	for _, dep := range l.order {
		if in[dep.name] {
			out = append(out, dep)
		}
	}
	return out
}

// analyze runs the analyzer on the fixture — per-package Run plus, for
// analyzers that have one, the whole-program Finish hook over the fixture's
// dependency closure with Complete=true — and returns the filtered,
// suppression-applied diagnostics: the same view the driver prints.
// Suppressions and findings in dependency files count too.
func analyze(t *testing.T, l *fxLoader, fx *fixture, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	deps := l.closure(fx)

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, sharedFset, fx.files, fx.tpkg, fx.info, &diags)
	if a.NeedsDataflow() {
		pass.Dataflow = dataflow.New(sharedFset, fx.files, fx.info)
	}
	if a.Needs(analysis.NeedCFG) {
		pass.CFG = cfg.NewInfo(fx.info)
	}
	if a.Needs(analysis.NeedCallGraph) {
		pass.CallGraph = callgraph.New(fx.tpkg, pass.Dataflow)
	}
	var store *facts.Store
	if a.Needs(analysis.NeedFacts) || a.Finish != nil {
		store = facts.NewStore()
		for _, dep := range deps {
			store.Add(facts.Compute(sharedFset, dep.files, dep.tpkg, dep.info, store))
		}
		pass.Facts = store
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, fx.name, err)
	}
	if a.Finish != nil {
		univ := make([]*analysis.Package, len(deps))
		for i, dep := range deps {
			univ[i] = dep.pkg()
		}
		fp := analysis.NewFinishPass(a, sharedFset, univ, store, true, &diags)
		if err := a.Finish(fp); err != nil {
			t.Fatalf("%s finish on %s: %v", a.Name, fx.name, err)
		}
	}

	var allFiles []*ast.File
	for _, dep := range deps {
		allFiles = append(allFiles, dep.files...)
	}
	sup := analysis.CollectSuppressions(sharedFset, allFiles)
	return analysis.Filter(sharedFset, diags, sup)
}

func checkWants(t *testing.T, l *fxLoader, fx *fixture, diags []analysis.Diagnostic) {
	t.Helper()
	got := map[string][]string{} // file:line -> messages
	for _, d := range diags {
		pos := sharedFset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		got[key] = append(got[key], d.Message)
	}

	var allFiles []*ast.File
	for _, dep := range l.closure(fx) {
		allFiles = append(allFiles, dep.files...)
	}
	want := wantComments(t, sharedFset, allFiles)
	keys := make([]string, 0, len(want))
	for key := range want {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		patterns := want[key]
		msgs := got[key]
		if len(msgs) != len(patterns) {
			t.Errorf("%s: want %d finding(s) %q, got %q", key, len(patterns), patterns, msgs)
			continue
		}
		for i, pat := range patterns {
			rx, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
			}
			if !rx.MatchString(msgs[i]) {
				t.Errorf("%s: finding %q does not match want %q", key, msgs[i], pat)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected finding(s) %q", key, msgs)
		}
	}
}

// RunFix applies the analyzer's suggested fixes to each fixture package and
// checks the result two ways:
//
//  1. golden diff — every file the fixes change must match its committed
//     <file>.golden sibling byte for byte, and a file with no golden must be
//     left untouched;
//  2. idempotency — the fixed sources (written to a scratch dir) are parsed,
//     type-checked, and re-analysed; a second ApplyFixes pass must rewrite
//     nothing, so -fix converges in one run.
//
// The type-check of the fixed sources doubles as a syntactic/semantic
// validity proof for the synthesised code. Set MPGRAPH_UPDATE_GOLDEN=1 to
// rewrite the goldens from the current fix output.
func RunFix(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	update := os.Getenv("MPGRAPH_UPDATE_GOLDEN") != ""
	for _, pkg := range pkgs {
		l := newFxLoader(testdata, nil)
		fx, err := l.load(pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		dir := fx.dir
		diags := analyze(t, l, fx, a)
		res, err := analysis.ApplyFixes(sharedFset, diags, nil)
		if err != nil {
			t.Fatalf("%s: ApplyFixes: %v", pkg, err)
		}
		if res.Skipped > 0 {
			t.Errorf("%s: %d fix(es) skipped for overlap within a single fixture", pkg, res.Skipped)
		}

		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		anyChanged := false
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			golden := path + ".golden"
			fixed, changed := res.Files[path]
			anyChanged = anyChanged || changed
			if update {
				if changed {
					if err := os.WriteFile(golden, fixed, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			want, err := os.ReadFile(golden)
			if errors.Is(err, fs.ErrNotExist) {
				if changed {
					t.Errorf("%s: fixes rewrite the file but no %s.golden is committed", path, e.Name())
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if !changed {
				t.Errorf("%s: %s.golden exists but fixes leave the file untouched", path, e.Name())
				continue
			}
			if string(fixed) != string(want) {
				t.Errorf("%s: fixed output differs from golden\n--- got ---\n%s\n--- want ---\n%s", path, fixed, want)
			}
		}
		if update || !anyChanged {
			continue
		}

		// Idempotency: materialise the fixed package and run fix again. The
		// scratch loader re-reads the target from tmp while resolving its
		// fixture dependencies (unchanged by the fixes) from testdata.
		tmp := t.TempDir()
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			src, ok := res.Files[path]
			if !ok {
				if src, err = os.ReadFile(path); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(filepath.Join(tmp, e.Name()), src, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		l2 := newFxLoader(testdata, map[string]string{pkg: tmp})
		fx2, err := l2.load(pkg)
		if err != nil {
			t.Fatalf("%s (fixed sources): %v", pkg, err)
		}
		res2, err := analysis.ApplyFixes(sharedFset, analyze(t, l2, fx2, a), nil)
		if err != nil {
			t.Fatalf("%s: ApplyFixes on fixed sources: %v", pkg, err)
		}
		if len(res2.Files) != 0 {
			for path, src := range res2.Files {
				t.Errorf("%s: fixes are not idempotent; second pass rewrites %s to:\n%s", pkg, path, src)
			}
		}
	}
}

// wantComments extracts want expectations: file:line -> regexp patterns.
func wantComments(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					want[key] = append(want[key], unquote(q))
				}
			}
		}
	}
	return want
}

func unquote(q string) string {
	body := q[1 : len(q)-1]
	if q[0] == '`' {
		return body
	}
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			i++
		}
		out.WriteByte(body[i])
	}
	return out.String()
}
