// Package analysistest is the fixture-driven test harness for mpgraph's
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// packages live under testdata/src/<pkg>/, and lines that should trigger a
// finding carry a trailing comment of the form
//
//	expr // want "regexp"
//
// (several "..." patterns on one line expect several findings). The harness
// type-checks each fixture against the standard library with a source
// importer, runs the analyzer, applies //mpgraph:allow suppression exactly
// as the driver does, and diffs findings against expectations. Analyzer
// Match functions are deliberately ignored so fixtures can use short
// package names. Analyzers that list analysis.NeedDataflow in Requires get
// a dataflow summary built for each fixture package, exactly as the driver
// would.
//
// RunFix additionally exercises an analyzer's suggested fixes: the fixture
// package is rewritten with ApplyFixes and every changed file is diffed
// against its committed <file>.golden sibling; the fixed sources are then
// re-analysed to prove the fixes are idempotent (a second -fix pass changes
// nothing). Set MPGRAPH_UPDATE_GOLDEN=1 to regenerate goldens after an
// intentional fix-format change.
package analysistest

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/callgraph"
	"mpgraph/internal/analysis/cfg"
	"mpgraph/internal/analysis/dataflow"
)

// wantRE matches one or more double- or backtick-quoted patterns after
// "// want".
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

// quotedRE extracts the individual quoted patterns from a want clause.
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run checks the analyzer against every named fixture package under
// testdata/src.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		fx := loadFixture(t, dir, pkg)
		checkWants(t, fx, analyze(t, fx, a))
	}
}

// fixture is one parsed and type-checked fixture package.
type fixture struct {
	dir   string
	name  string
	fset  *token.FileSet
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

func loadFixture(t *testing.T, dir, name string) *fixture {
	t.Helper()
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", name, dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", name, err)
	}
	return &fixture{dir: dir, name: name, fset: fset, files: files, tpkg: tpkg, info: info}
}

// analyze runs the analyzer on the fixture and returns the filtered,
// suppression-applied diagnostics — the same view the driver prints.
func analyze(t *testing.T, fx *fixture, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, fx.fset, fx.files, fx.tpkg, fx.info, &diags)
	if a.NeedsDataflow() {
		pass.Dataflow = dataflow.New(fx.fset, fx.files, fx.info)
	}
	if a.Needs(analysis.NeedCFG) {
		pass.CFG = cfg.NewInfo(fx.info)
	}
	if a.Needs(analysis.NeedCallGraph) {
		pass.CallGraph = callgraph.New(fx.tpkg, pass.Dataflow)
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, fx.name, err)
	}
	sup := analysis.CollectSuppressions(fx.fset, fx.files)
	return analysis.Filter(fx.fset, diags, sup)
}

func checkWants(t *testing.T, fx *fixture, diags []analysis.Diagnostic) {
	t.Helper()
	got := map[string][]string{} // file:line -> messages
	for _, d := range diags {
		pos := fx.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		got[key] = append(got[key], d.Message)
	}

	want := wantComments(t, fx.fset, fx.files)
	for key, patterns := range want {
		msgs := got[key]
		if len(msgs) != len(patterns) {
			t.Errorf("%s: want %d finding(s) %q, got %q", key, len(patterns), patterns, msgs)
			continue
		}
		for i, pat := range patterns {
			rx, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
			}
			if !rx.MatchString(msgs[i]) {
				t.Errorf("%s: finding %q does not match want %q", key, msgs[i], pat)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected finding(s) %q", key, msgs)
		}
	}
}

// RunFix applies the analyzer's suggested fixes to each fixture package and
// checks the result two ways:
//
//  1. golden diff — every file the fixes change must match its committed
//     <file>.golden sibling byte for byte, and a file with no golden must be
//     left untouched;
//  2. idempotency — the fixed sources (written to a scratch dir) are parsed,
//     type-checked, and re-analysed; a second ApplyFixes pass must rewrite
//     nothing, so -fix converges in one run.
//
// The type-check of the fixed sources doubles as a syntactic/semantic
// validity proof for the synthesised code. Set MPGRAPH_UPDATE_GOLDEN=1 to
// rewrite the goldens from the current fix output.
func RunFix(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	update := os.Getenv("MPGRAPH_UPDATE_GOLDEN") != ""
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		fx := loadFixture(t, dir, pkg)
		diags := analyze(t, fx, a)
		res, err := analysis.ApplyFixes(fx.fset, diags, nil)
		if err != nil {
			t.Fatalf("%s: ApplyFixes: %v", pkg, err)
		}
		if res.Skipped > 0 {
			t.Errorf("%s: %d fix(es) skipped for overlap within a single fixture", pkg, res.Skipped)
		}

		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		anyChanged := false
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			golden := path + ".golden"
			fixed, changed := res.Files[path]
			anyChanged = anyChanged || changed
			if update {
				if changed {
					if err := os.WriteFile(golden, fixed, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			want, err := os.ReadFile(golden)
			if errors.Is(err, fs.ErrNotExist) {
				if changed {
					t.Errorf("%s: fixes rewrite the file but no %s.golden is committed", path, e.Name())
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if !changed {
				t.Errorf("%s: %s.golden exists but fixes leave the file untouched", path, e.Name())
				continue
			}
			if string(fixed) != string(want) {
				t.Errorf("%s: fixed output differs from golden\n--- got ---\n%s\n--- want ---\n%s", path, fixed, want)
			}
		}
		if update || !anyChanged {
			continue
		}

		// Idempotency: materialise the fixed package and run fix again.
		tmp := t.TempDir()
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			src, ok := res.Files[path]
			if !ok {
				if src, err = os.ReadFile(path); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(filepath.Join(tmp, e.Name()), src, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		fx2 := loadFixture(t, tmp, pkg)
		res2, err := analysis.ApplyFixes(fx2.fset, analyze(t, fx2, a), nil)
		if err != nil {
			t.Fatalf("%s: ApplyFixes on fixed sources: %v", pkg, err)
		}
		if len(res2.Files) != 0 {
			for path, src := range res2.Files {
				t.Errorf("%s: fixes are not idempotent; second pass rewrites %s to:\n%s", pkg, path, src)
			}
		}
	}
}

// wantComments extracts want expectations: file:line -> regexp patterns.
func wantComments(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					want[key] = append(want[key], unquote(q))
				}
			}
		}
	}
	return want
}

func unquote(q string) string {
	body := q[1 : len(q)-1]
	if q[0] == '`' {
		return body
	}
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			i++
		}
		out.WriteByte(body[i])
	}
	return out.String()
}
