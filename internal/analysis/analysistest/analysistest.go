// Package analysistest is the fixture-driven test harness for mpgraph's
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// packages live under testdata/src/<pkg>/, and lines that should trigger a
// finding carry a trailing comment of the form
//
//	expr // want "regexp"
//
// (several "..." patterns on one line expect several findings). The harness
// type-checks each fixture against the standard library with a source
// importer, runs the analyzer, applies //mpgraph:allow suppression exactly
// as the driver does, and diffs findings against expectations. Analyzer
// Match functions are deliberately ignored so fixtures can use short
// package names.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mpgraph/internal/analysis"
)

// wantRE matches one or more double- or backtick-quoted patterns after
// "// want".
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

// quotedRE extracts the individual quoted patterns from a want clause.
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run checks the analyzer against every named fixture package under
// testdata/src.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		runPackage(t, dir, pkg, a)
	}
}

func runPackage(t *testing.T, dir, name string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", name, dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", name, err)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, fset, files, tpkg, info, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, name, err)
	}
	sup := analysis.CollectSuppressions(fset, files)
	got := map[string][]string{} // file:line -> messages
	for _, d := range analysis.Filter(fset, diags, sup) {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		got[key] = append(got[key], d.Message)
	}

	want := wantComments(t, fset, files)
	for key, patterns := range want {
		msgs := got[key]
		if len(msgs) != len(patterns) {
			t.Errorf("%s: want %d finding(s) %q, got %q", key, len(patterns), patterns, msgs)
			continue
		}
		for i, pat := range patterns {
			rx, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
			}
			if !rx.MatchString(msgs[i]) {
				t.Errorf("%s: finding %q does not match want %q", key, msgs[i], pat)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected finding(s) %q", key, msgs)
		}
	}
}

// wantComments extracts want expectations: file:line -> regexp patterns.
func wantComments(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					want[key] = append(want[key], unquote(q))
				}
			}
		}
	}
	return want
}

func unquote(q string) string {
	body := q[1 : len(q)-1]
	if q[0] == '`' {
		return body
	}
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			i++
		}
		out.WriteByte(body[i])
	}
	return out.String()
}
