// Package cfg builds intraprocedural control-flow graphs over ast.Stmt for
// mpgraph-vet's concurrency-contract analyzers (DESIGN.md §7). Like the
// dataflow layer it is standard-library only and deliberately structural: a
// Graph is basic blocks of ast.Node items (simple statements plus the
// condition/tag expressions of the control statements that end a block)
// connected by branch, loop, switch, select, goto and fall-through edges,
// with one synthetic Exit block that every return, explicit panic(), and
// fall-off-the-end path targets.
//
// Two queries carry the analyzers:
//
//   - path structure: Succs/Preds plus Reachable let a pass ask "can this
//     close(ch) reach this send?" — lockcheck runs a lockset fixpoint over
//     the same edges;
//   - dominance: Dominates answers "must this node execute before that
//     one?" (a make(chan) dominating every close proves ownership; an
//     Unlock failing to appear on a path to Exit proves a leak).
//
// Deferred calls do not get edges (they run at every exit); instead each
// DeferStmt is kept in its block's node list, so a flow-sensitive pass sees
// exactly from which program point a deferred release is armed.
//
// Panic edges are the caller's concern by design: any function call can
// panic, so materialising an Exit edge per call would dissolve the graph.
// Passes that care (lockcheck's "released on the panic path too" rule)
// classify call-bearing nodes themselves; the graph contributes the
// explicit panic() statements, which do end their block with an Exit edge.
//
// Analyzers opt in by listing analysis.NeedCFG in Analyzer.Requires; the
// checker then populates Pass.CFG with one Info per package, and function
// graphs are built lazily and memoised per body.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Graph is the control-flow graph of one function or closure body.
type Graph struct {
	// Entry is the block control enters at; it is Blocks[0].
	Entry *Block
	// Exit is the synthetic block every return/panic/fall-off path targets.
	Exit *Block
	// Blocks lists every block, Entry first, Exit last. Unreachable blocks
	// (code after return, empty loop exits) are retained — analyzers decide
	// whether unreachable code matters.
	Blocks []*Block

	blockOf map[ast.Node]*Block
	idom    []*Block // lazily computed immediate dominators, by Block.Index
}

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes holds, in execution order, the simple statements of the block
	// plus the control expression that terminates it (an if/for condition,
	// a switch tag, a range operand, a select comm statement). DeferStmt
	// nodes appear where they arm, not where they run.
	Nodes []ast.Node
	// Succs and Preds are the flow edges, in construction order (then
	// before else, case order preserved) so analyzer output is stable.
	Succs, Preds []*Block
}

// New builds the graph for body. info may be nil; when present it is used
// to recognise calls to the panic builtin (which end their block with an
// Exit edge) even under shadowing.
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	g := &Graph{blockOf: map[ast.Node]*Block{}}
	b := &builder{g: g, info: info, labels: map[string]*labelBlocks{}}
	g.Entry = b.newBlock()
	g.Exit = &Block{}
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit) // fall off the end
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

// BlockFor returns the block whose Nodes contain n, or nil: statements
// nested inside a control statement map to their own blocks, and function
// literals are separate graphs.
func (g *Graph) BlockFor(n ast.Node) *Block { return g.blockOf[n] }

// Reachable reports whether to can execute after from (from == to reports
// whether from can re-execute, i.e. sits on a cycle).
func (g *Graph) Reachable(from, to *Block) bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s.Index] {
				seen[s.Index] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	return walk(from)
}

// Dominates reports whether every path from Entry to b passes through a
// (reflexively: a block dominates itself). Blocks unreachable from Entry
// are dominated by nothing and dominate nothing.
func (g *Graph) Dominates(a, b *Block) bool {
	if g.idom == nil {
		g.computeDominators()
	}
	if a == b {
		return g.idom[b.Index] != nil || b == g.Entry
	}
	for d := g.idom[b.Index]; d != nil; d = g.idom[d.Index] {
		if d == a {
			return true
		}
	}
	return false
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm
// over the blocks reachable from Entry, in reverse postorder.
func (g *Graph) computeDominators() {
	rpo := g.reversePostorder()
	order := make([]int, len(g.Blocks)) // Block.Index -> RPO position
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b.Index] = i
	}
	idom := make([]*Block, len(g.Blocks))
	idom[g.Entry.Index] = g.Entry
	intersect := func(x, y *Block) *Block {
		for x != y {
			for order[x.Index] > order[y.Index] {
				x = idom[x.Index]
			}
			for order[y.Index] > order[x.Index] {
				y = idom[y.Index]
			}
		}
		return x
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p.Index] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	idom[g.Entry.Index] = nil // Entry has no immediate dominator
	g.idom = idom
}

// reversePostorder returns the blocks reachable from Entry in reverse
// postorder of a depth-first walk.
func (g *Graph) reversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	walk(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// labelBlocks tracks the jump targets a label can name.
type labelBlocks struct {
	// target receives goto edges (and is the labeled statement's block).
	target *Block
	// brk/cont are set while the labeled loop/switch is being built.
	brk, cont *Block
}

type builder struct {
	g    *Graph
	info *types.Info
	cur  *Block

	// breaks/continues are the innermost unlabeled targets.
	breaks, continues []*Block
	labels            map[string]*labelBlocks
	// pendingLabel names the label attached to the statement about to be
	// built, so its loop registers labeled break/continue targets.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock begins a fresh block with an edge from cur.
func (b *builder) startBlock() *Block {
	nb := b.newBlock()
	b.edge(b.cur, nb)
	b.cur = nb
	return nb
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.blockOf[n] = b.cur
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // anything after is unreachable
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isPanic(call) {
			b.edge(b.cur, b.g.Exit)
			b.cur = b.newBlock()
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		header := b.cur
		thenB := b.newBlock()
		b.edge(header, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		thenEnd := b.cur
		join := b.newBlock()
		b.edge(thenEnd, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(header, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(header, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		done := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			b.edge(head, done)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, done, post)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, post)
		b.popLoop(label)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
		}
		b.edge(post, head)
		b.cur = done
	case *ast.RangeStmt:
		b.add(s.X)
		head := b.startBlock()
		done := b.newBlock()
		b.edge(head, done)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, done, head)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.popLoop(label)
		b.cur = done
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body)
	case *ast.SelectStmt:
		header := b.cur
		join := b.newBlock()
		b.pushSwitch(label, join)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(header, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.popSwitch(label)
		if len(s.Body.List) == 0 {
			b.edge(header, join)
		}
		b.cur = join
	case *ast.LabeledStmt:
		lb := b.labelFor(s.Label.Name)
		b.edge(b.cur, lb.target)
		b.cur = lb.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s, b.breaks, false); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s, b.continues, true); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			if s.Label != nil {
				b.edge(b.cur, b.labelFor(s.Label.Name).target)
			}
		case token.FALLTHROUGH:
			// caseClauses wires the fall-through edge; nothing to do here.
			return
		}
		b.cur = b.newBlock() // anything after is unreachable
	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)
	default:
		if s != nil {
			b.add(s)
		}
	}
}

// caseClauses builds the shared switch/type-switch clause structure with
// fall-through edges.
func (b *builder) caseClauses(label string, body *ast.BlockStmt) {
	header := b.cur
	join := b.newBlock()
	b.pushSwitch(label, join)
	var blocks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(header, blk)
		blocks = append(blocks, blk)
	}
	i := 0
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, join)
		}
		i++
	}
	b.popSwitch(label)
	if !hasDefault {
		b.edge(header, join)
	}
	b.cur = join
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		lb := b.labelFor(label)
		lb.brk, lb.cont = brk, cont
	}
}

func (b *builder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		lb := b.labelFor(label)
		lb.brk, lb.cont = nil, nil
	}
}

func (b *builder) pushSwitch(label string, brk *Block) {
	b.breaks = append(b.breaks, brk)
	if label != "" {
		b.labelFor(label).brk = brk
	}
}

func (b *builder) popSwitch(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		b.labelFor(label).brk = nil
	}
}

// branchTarget resolves a break/continue to its block: the labeled loop's
// when a label is present, the innermost otherwise.
func (b *builder) branchTarget(s *ast.BranchStmt, stack []*Block, cont bool) *Block {
	if s.Label != nil {
		lb := b.labelFor(s.Label.Name)
		if cont {
			return lb.cont
		}
		return lb.brk
	}
	if len(stack) == 0 {
		return nil // malformed code; the type-checker rejects it anyway
	}
	return stack[len(stack)-1]
}

// labelFor returns (creating on first use, which supports forward gotos)
// the label's block record.
func (b *builder) labelFor(name string) *labelBlocks {
	lb, ok := b.labels[name]
	if !ok {
		lb = &labelBlocks{target: b.newBlock()}
		b.labels[name] = lb
	}
	return lb
}

// isPanic reports whether call invokes the panic builtin.
func (b *builder) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info == nil {
		return true
	}
	_, isBuiltin := b.info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// Info is the per-package CFG fact shared across analyzers: function and
// closure graphs built lazily and memoised by body.
type Info struct {
	info   *types.Info
	graphs map[*ast.BlockStmt]*Graph
}

// NewInfo builds an empty CFG cache for one package. info may be nil.
func NewInfo(info *types.Info) *Info {
	return &Info{info: info, graphs: map[*ast.BlockStmt]*Graph{}}
}

// FuncGraph returns the (memoised) graph for a function or closure body.
func (in *Info) FuncGraph(body *ast.BlockStmt) *Graph {
	if g, ok := in.graphs[body]; ok {
		return g
	}
	g := New(body, in.info)
	in.graphs[body] = g
	return g
}
