package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"mpgraph/internal/analysis/cfg"
)

// build parses one function body and returns its graph plus the means to
// find statements by source text position.
func build(t *testing.T, src string) (*cfg.Graph, *ast.FuncDecl, *token.FileSet, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	if _, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	var fd *ast.FuncDecl
	for _, d := range f.Decls {
		if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "f" {
			fd = x
			break
		}
	}
	if fd == nil {
		t.Fatal("no function f in source")
	}
	return cfg.New(fd.Body, info), fd, fset, info
}

// blockOfCall finds the block containing the call statement to the named
// function.
func blockOfCall(t *testing.T, g *cfg.Graph, fd *ast.FuncDecl, name string) *cfg.Block {
	t.Helper()
	var blk *cfg.Block
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
			blk = g.BlockFor(es)
		}
		return true
	})
	if blk == nil {
		t.Fatalf("no block for call %s", name)
	}
	return blk
}

const branchSrc = `package x

func a() {}
func b() {}
func c() {}

func f(cond bool) {
	a()
	if cond {
		b()
		return
	}
	c()
}
`

// TestIfReturn: the then-branch returns, so c() must be reachable from a()
// but not from b(), and a() must dominate both branches.
func TestIfReturn(t *testing.T) {
	g, fd, _, _ := build(t, branchSrc)
	ba := blockOfCall(t, g, fd, "a")
	bb := blockOfCall(t, g, fd, "b")
	bc := blockOfCall(t, g, fd, "c")
	if !g.Reachable(ba, bb) || !g.Reachable(ba, bc) {
		t.Fatal("both branches must be reachable from the entry statement")
	}
	if g.Reachable(bb, bc) {
		t.Fatal("c() must not be reachable from the returning then-branch")
	}
	if !g.Dominates(ba, bb) || !g.Dominates(ba, bc) {
		t.Fatal("the unconditional prefix must dominate both branches")
	}
	if g.Dominates(bb, bc) || g.Dominates(bc, bb) {
		t.Fatal("neither branch dominates the other")
	}
	if !g.Dominates(ba, g.Exit) {
		t.Fatal("the unconditional prefix must dominate Exit")
	}
	if g.Dominates(bc, g.Exit) {
		t.Fatal("c() is skipped by the early return, it cannot dominate Exit")
	}
}

const loopSrc = `package x

func body() {}
func after() {}

func f(n int) {
	for i := 0; i < n; i++ {
		if i == 2 {
			break
		}
		body()
	}
	after()
}
`

// TestLoop: the loop body sits on a cycle, break reaches the after-loop
// code, and the loop does not dominate Exit via the body.
func TestLoop(t *testing.T) {
	g, fd, _, _ := build(t, loopSrc)
	bb := blockOfCall(t, g, fd, "body")
	ba := blockOfCall(t, g, fd, "after")
	if !g.Reachable(bb, bb) {
		t.Fatal("loop body must be on a cycle")
	}
	if !g.Reachable(bb, ba) {
		t.Fatal("code after the loop must be reachable from the body")
	}
	if g.Dominates(bb, ba) {
		t.Fatal("a conditional loop body must not dominate the after-loop code")
	}
	if !g.Dominates(ba, g.Exit) {
		t.Fatal("the after-loop statement must dominate Exit")
	}
}

const panicSrc = `package x

func a() {}
func b() {}

func f(bad bool) {
	a()
	if bad {
		panic("bad")
	}
	b()
}
`

// TestPanicEdge: an explicit panic() ends its block with an Exit edge, so
// the code after the guarded panic is not dominated by it.
func TestPanicEdge(t *testing.T) {
	g, fd, _, _ := build(t, panicSrc)
	ba := blockOfCall(t, g, fd, "a")
	bbk := blockOfCall(t, g, fd, "b")
	var panicBlk *cfg.Block
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				panicBlk = g.BlockFor(es)
			}
		}
		return true
	})
	if panicBlk == nil {
		t.Fatal("no block for panic statement")
	}
	if g.Reachable(panicBlk, bbk) {
		t.Fatal("b() must not be reachable from the panic statement")
	}
	if !g.Reachable(ba, g.Exit) || !g.Reachable(panicBlk, g.Exit) {
		t.Fatal("both the normal path and the panic must reach Exit")
	}
	if g.Dominates(bbk, g.Exit) {
		t.Fatal("b() does not dominate Exit: the panic path bypasses it")
	}
}

const switchSrc = `package x

func one() {}
func two() {}
func after() {}

func f(n int) {
	switch n {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	}
	after()
}
`

// TestSwitchFallthrough: fallthrough wires case 1 into case 2's block.
func TestSwitchFallthrough(t *testing.T) {
	g, fd, _, _ := build(t, switchSrc)
	b1 := blockOfCall(t, g, fd, "one")
	b2 := blockOfCall(t, g, fd, "two")
	ba := blockOfCall(t, g, fd, "after")
	if !g.Reachable(b1, b2) {
		t.Fatal("fallthrough must connect case 1 to case 2")
	}
	if g.Reachable(b2, b1) {
		t.Fatal("cases must not be connected backwards")
	}
	if g.Dominates(b2, ba) {
		t.Fatal("a tagged switch without default must not make any case dominate the join")
	}
	if !g.Reachable(b2, ba) {
		t.Fatal("the join must be reachable from case bodies")
	}
}

const labelSrc = `package x

func inner() {}
func after() {}

func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				continue outer
			}
			if j == 4 {
				break outer
			}
			inner()
		}
	}
	after()
}
`

// TestLabeledBranches: labeled continue re-enters the outer loop, labeled
// break leaves it.
func TestLabeledBranches(t *testing.T) {
	g, fd, _, _ := build(t, labelSrc)
	bi := blockOfCall(t, g, fd, "inner")
	ba := blockOfCall(t, g, fd, "after")
	if !g.Reachable(bi, bi) {
		t.Fatal("inner body must be on a cycle through the labeled loop")
	}
	if !g.Reachable(bi, ba) {
		t.Fatal("labeled break must reach the after-loop code")
	}
	if !g.Dominates(ba, g.Exit) {
		t.Fatal("the after-loop statement must dominate Exit")
	}
}

const selectSrc = `package x

func recv() {}
func send() {}
func after() {}

func f(a, b chan int) {
	select {
	case <-a:
		recv()
	case b <- 1:
		send()
	}
	after()
}
`

// TestSelect: each comm clause is its own block flowing to the join.
func TestSelect(t *testing.T) {
	g, fd, _, _ := build(t, selectSrc)
	br := blockOfCall(t, g, fd, "recv")
	bs := blockOfCall(t, g, fd, "send")
	ba := blockOfCall(t, g, fd, "after")
	if g.Reachable(br, bs) || g.Reachable(bs, br) {
		t.Fatal("select arms must not flow into each other")
	}
	if !g.Reachable(br, ba) || !g.Reachable(bs, ba) {
		t.Fatal("both arms must reach the join")
	}
	if g.Dominates(br, ba) || g.Dominates(bs, ba) {
		t.Fatal("no single arm dominates the join")
	}
}

// TestMemoisedInfo: Info caches graphs per body.
func TestMemoisedInfo(t *testing.T) {
	_, fd, _, info := build(t, branchSrc)
	in := cfg.NewInfo(info)
	g1 := in.FuncGraph(fd.Body)
	g2 := in.FuncGraph(fd.Body)
	if g1 != g2 {
		t.Fatal("FuncGraph must memoise per body")
	}
}
