package analysis_test

import (
	"go/parser"
	"go/token"
	"testing"

	"mpgraph/internal/analysis"
)

// parseOne registers src as filename in a fresh FileSet so token.Pos values
// can be minted from byte offsets.
func parseOne(t *testing.T, filename, src string) (*token.FileSet, *token.File) {
	t.Helper()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, filename, src, 0); err != nil {
		t.Fatal(err)
	}
	var tf *token.File
	fset.Iterate(func(f *token.File) bool { tf = f; return false })
	return fset, tf
}

const fixSrc = `package p

var a = 1
var b = 2
`

// TestApplyFixes: edits apply at the right offsets, overlapping fixes are
// skipped whole, and untouched files are not rewritten.
func TestApplyFixes(t *testing.T) {
	fset, tf := parseOne(t, "p.go", fixSrc)
	pos := func(off int) token.Pos { return tf.Pos(off) }

	// "var a = 1" occupies offsets [11,20); replace the literal 1 at [19,20).
	diags := []analysis.Diagnostic{
		{
			Pos: pos(19), Message: "one", Analyzer: "t",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message:   "bump",
				TextEdits: []analysis.TextEdit{{Pos: pos(19), End: pos(20), NewText: "10"}},
			}},
		},
		{
			// Overlaps the first fix: must be skipped, not merged.
			Pos: pos(19), Message: "conflict", Analyzer: "t",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message:   "conflicting bump",
				TextEdits: []analysis.TextEdit{{Pos: pos(19), End: pos(20), NewText: "99"}},
			}},
		},
		{
			// Independent edit later in the file: literal 2 at [29,30).
			Pos: pos(29), Message: "two", Analyzer: "t",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message:   "bump",
				TextEdits: []analysis.TextEdit{{Pos: pos(29), End: pos(30), NewText: "20"}},
			}},
		},
	}
	res, err := analysis.ApplyFixes(fset, diags, func(string) ([]byte, error) {
		return []byte(fixSrc), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.Skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 2/1", res.Applied, res.Skipped)
	}
	want := "package p\n\nvar a = 10\nvar b = 20\n"
	if got := string(res.Files["p.go"]); got != want {
		t.Fatalf("rewritten file:\n%q\nwant:\n%q", got, want)
	}
}

// TestFilterDeduplicates: two analyzers reporting the same message at the
// same position collapse to one diagnostic, attributed to the lexically
// first analyzer; distinct messages at one position both survive.
func TestFilterDeduplicates(t *testing.T) {
	fset, tf := parseOne(t, "q.go", fixSrc)
	p := tf.Pos(11)
	diags := []analysis.Diagnostic{
		{Pos: p, Message: "same finding", Analyzer: "zeta"},
		{Pos: p, Message: "same finding", Analyzer: "alpha"},
		{Pos: p, Message: "different finding", Analyzer: "zeta"},
	}
	got := analysis.Filter(fset, diags, analysis.Suppressions{})
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(got), got)
	}
	if got[0].Message != "different finding" {
		t.Errorf("sorted order wrong: %+v", got)
	}
	if got[1].Analyzer != "alpha" {
		t.Errorf("dedupe kept %q, want lexically-first analyzer alpha", got[1].Analyzer)
	}
}
