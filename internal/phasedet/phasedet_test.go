package phasedet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSStatisticBasics(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(same, same); d != 0 {
		t.Fatalf("identical samples D = %g, want 0", d)
	}
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); d != 1 {
		t.Fatalf("disjoint samples D = %g, want 1", d)
	}
	// Closed form: a={1,3}, b={2,4}: CDFs differ by 0.5 at x in [1,2),[2,3)...
	if d := KSStatistic([]float64{1, 3}, []float64{2, 4}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("D = %g, want 0.5", d)
	}
	if d := KSStatistic(nil, a); d != 0 {
		t.Fatal("empty sample D must be 0")
	}
}

func TestKSStatisticSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 40)
	b := make([]float64, 25)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64() + 1
	}
	if math.Abs(KSStatistic(a, b)-KSStatistic(b, a)) > 1e-12 {
		t.Fatal("K-S must be symmetric")
	}
}

// Property: D ∈ [0,1] and shifting one sample far away drives D to 1.
func TestQuickKSRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		d := KSStatistic(a, b)
		if d < 0 || d > 1 {
			return false
		}
		for i := range b {
			b[i] += 1e9
		}
		return KSStatistic(a, b) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the KSWIN threshold shrinks as alpha grows (easier to fire) and
// as r grows (more evidence).
func TestQuickThresholdMonotone(t *testing.T) {
	f := func(rawA, rawB uint8, rawR uint8) bool {
		a1 := 1e-6 + float64(rawA)/300.0
		a2 := a1 + 1e-6 + float64(rawB)/300.0
		r := 5 + int(rawR)%100
		if KSThreshold(a2, r) >= KSThreshold(a1, r) {
			return false
		}
		return KSThreshold(a1, r+10) < KSThreshold(a1, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// phaseStream builds a PC stream alternating between two phase-specific PC
// pools every phaseLen samples, with short impulse bursts from a third pool
// inside each phase (the false-positive trap of Fig. 5/9). Returns the
// stream and the ground-truth transition indices.
func phaseStream(phases, phaseLen, burstEvery, burstLen int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	poolA := []float64{0x400000, 0x400040, 0x400080, 0x4000c0}
	poolB := []float64{0x500000, 0x500040, 0x500080, 0x5000c0, 0x500100}
	poolBurst := []float64{0x600000, 0x600040}
	var xs []float64
	var truth []int
	for p := 0; p < phases; p++ {
		pool := poolA
		if p%2 == 1 {
			pool = poolB
		}
		if p > 0 {
			truth = append(truth, len(xs))
		}
		for i := 0; i < phaseLen; i++ {
			inBurst := burstEvery > 0 && i%burstEvery >= burstEvery-burstLen && i > burstEvery
			if inBurst {
				xs = append(xs, poolBurst[rng.Intn(len(poolBurst))])
			} else {
				xs = append(xs, pool[rng.Intn(len(pool))])
			}
		}
	}
	return xs, truth
}

func TestKSWINDetectsTransitions(t *testing.T) {
	xs, truth := phaseStream(4, 3000, 0, 0, 7)
	det := NewKSWIN(KSWINConfig{Seed: 1})
	detected := RunDetector(det, xs)
	s := EvaluateDetections(detected, truth, 0, 600)
	if s.Recall < 1 {
		t.Fatalf("KSWIN recall = %v on clean stream, want 1 (%v)", s.Recall, s)
	}
}

func TestSoftKSWINDetectsTransitions(t *testing.T) {
	xs, truth := phaseStream(4, 3000, 0, 0, 7)
	det := NewSoftKSWIN(KSWINConfig{Seed: 1})
	detected := RunDetector(det, xs)
	s := EvaluateDetections(detected, truth, 0, 600)
	if s.Recall < 1 {
		t.Fatalf("Soft-KSWIN recall = %v, want 1 (%v)", s.Recall, s)
	}
}

// The paper's headline claim for Table 4: on streams with impulse bursts,
// Soft-KSWIN keeps recall 1 while achieving strictly higher precision than
// KSWIN.
func TestSoftKSWINBeatsKSWINOnBursts(t *testing.T) {
	xs, truth := phaseStream(6, 4000, 900, 25, 11)
	hard := RunDetector(NewKSWIN(KSWINConfig{Seed: 3}), xs)
	soft := RunDetector(NewSoftKSWIN(KSWINConfig{Seed: 3}), xs)
	hs := EvaluateDetections(hard, truth, 0, 800)
	ss := EvaluateDetections(soft, truth, 0, 800)
	if ss.Recall < 1 {
		t.Fatalf("soft recall %v (%v)", ss.Recall, ss)
	}
	if ss.Precision <= hs.Precision {
		t.Fatalf("soft precision %.3f must beat hard %.3f (hard %v, soft %v)",
			ss.Precision, hs.Precision, hs, ss)
	}
}

func TestDetectorReset(t *testing.T) {
	xs, _ := phaseStream(2, 2000, 0, 0, 5)
	for _, d := range []Detector{NewKSWIN(KSWINConfig{Seed: 2}), NewSoftKSWIN(KSWINConfig{Seed: 2})} {
		first := RunDetector(d, xs)
		d.Reset()
		second := RunDetector(d, xs)
		if len(first) != len(second) {
			t.Fatalf("%s: %d vs %d detections after reset", d.Name(), len(first), len(second))
		}
	}
}

func TestDecisionTreeLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		cls := i % 2
		base := float64(cls) * 3
		X = append(X, []float64{base + rng.NormFloat64()*0.3, rng.NormFloat64()})
		y = append(y, cls)
	}
	tree := NewDecisionTree(6, 2)
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		if tree.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if correct < 380 {
		t.Fatalf("tree accuracy %d/400", correct)
	}
	if tree.Depth() == 0 {
		t.Fatal("tree should have split")
	}
}

func TestDecisionTreeErrors(t *testing.T) {
	tree := NewDecisionTree(0, 0)
	if err := tree.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must fail")
	}
	if err := tree.Fit([][]float64{{1, 2}, {1}}, []int{0, 1}); err == nil {
		t.Fatal("ragged rows must fail")
	}
	if tree.Predict([]float64{1}) != 0 {
		t.Fatal("untrained tree predicts class 0")
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		X = append(X, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Intn(4))
	}
	tree := NewDecisionTree(3, 2)
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Fatalf("depth %d exceeds limit 3", tree.Depth())
	}
}

func TestPCFeaturizer(t *testing.T) {
	f := NewPCFeaturizer(4, 8)
	if f.Push(1) || f.Push(2) || f.Push(3) {
		t.Fatal("not warm yet")
	}
	if !f.Push(4) {
		t.Fatal("warm after window fills")
	}
	feats := f.Features()
	sum := 0.0
	for _, v := range feats {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("features must be a distribution, sum %g", sum)
	}
	f.Reset()
	if got := f.Features(); len(got) != 8 {
		t.Fatal("features after reset")
	}
	empty := NewPCFeaturizer(0, 0)
	if empty.Window != 64 || empty.Buckets != 16 {
		t.Fatal("defaults")
	}
}

// trainTreeOnStream labels each position with its phase and trains the tree
// on window features, mirroring the offline supervised workflow.
func trainTreeOnStream(xs []float64, truth []int, window, buckets int) *DecisionTree {
	labels := make([]int, len(xs))
	phase := 0
	next := 0
	for i := range xs {
		if next < len(truth) && i >= truth[next] {
			phase++
			next++
		}
		labels[i] = phase % 2
	}
	feat := NewPCFeaturizer(window, buckets)
	var X [][]float64
	var y []int
	for i, x := range xs {
		if feat.Push(x) && i%7 == 0 {
			X = append(X, feat.Features())
			y = append(y, labels[i])
		}
	}
	tree := NewDecisionTree(8, 4)
	if err := tree.Fit(X, y); err != nil {
		panic(err)
	}
	return tree
}

func TestDTDetectorsOnStream(t *testing.T) {
	trainXs, trainTruth := phaseStream(4, 3000, 900, 25, 21)
	tree := trainTreeOnStream(trainXs, trainTruth, 64, 16)

	testXs, testTruth := phaseStream(6, 3000, 900, 25, 22)
	hard := RunDetector(NewDTDetector(tree, 64, 16), testXs)
	soft := RunDetector(NewSoftDTDetector(tree, 64, 16, 40), testXs)
	hs := EvaluateDetections(hard, testTruth, 0, 600)
	ss := EvaluateDetections(soft, testTruth, 0, 600)
	if ss.Recall < 1 {
		t.Fatalf("soft-dt recall %v (%v)", ss.Recall, ss)
	}
	if hs.Recall < 1 {
		t.Fatalf("dt recall %v (%v)", hs.Recall, hs)
	}
	if ss.Precision < hs.Precision {
		t.Fatalf("soft-dt precision %.3f must be >= dt %.3f", ss.Precision, hs.Precision)
	}
	// Detector names are stable identifiers used in reports.
	if (&DTDetector{}).Name() != "dt" || (&SoftDTDetector{}).Name() != "soft-dt" {
		t.Fatal("names")
	}
}

func TestSoftDTReset(t *testing.T) {
	xs, truth := phaseStream(3, 2000, 0, 0, 30)
	tree := trainTreeOnStream(xs, truth, 64, 16)
	d := NewSoftDTDetector(tree, 64, 16, 40)
	first := RunDetector(d, xs)
	d.Reset()
	second := RunDetector(d, xs)
	if len(first) != len(second) {
		t.Fatal("reset must restore initial state")
	}
}

func TestEvaluateDetections(t *testing.T) {
	s := EvaluateDetections([]int{100, 105, 900}, []int{95, 500}, 0, 50)
	// 100 matches 95; 105 is a duplicate (FP); 900 matches nothing (FP);
	// 500 is missed.
	if s.TP != 1 || s.FP != 2 || s.Missed != 1 {
		t.Fatalf("got %+v", s)
	}
	if math.Abs(s.Precision-1.0/3) > 1e-12 || math.Abs(s.Recall-0.5) > 1e-12 {
		t.Fatalf("P/R wrong: %v", s)
	}
	if s.F1() <= 0 || s.String() == "" {
		t.Fatal("F1/String")
	}
	// Detections before the truth index do not match (detectors lag).
	s2 := EvaluateDetections([]int{90}, []int{95}, 0, 50)
	if s2.TP != 0 {
		t.Fatal("early detection must not match")
	}
	empty := EvaluateDetections(nil, nil, 0, 10)
	if empty.F1() != 0 {
		t.Fatal("empty F1")
	}
	perfect := EvaluateDetections([]int{10}, []int{10}, 0, 0)
	if perfect.Precision != 1 || perfect.Recall != 1 || perfect.F1() != 1 {
		t.Fatal("perfect score")
	}
}

func TestModeTieBreak(t *testing.T) {
	if mode([]int{1, 1, 2, 2}) != 1 {
		t.Fatal("mode must break ties toward the smaller class")
	}
	if mode([]int{3}) != 3 {
		t.Fatal("singleton mode")
	}
}

func TestEvaluateDetectionsLead(t *testing.T) {
	// A detection slightly before the truth matches when lead allows it.
	s := EvaluateDetections([]int{90}, []int{95}, 10, 50)
	if s.TP != 1 || s.FP != 0 {
		t.Fatalf("lead match failed: %+v", s)
	}
	s = EvaluateDetections([]int{80}, []int{95}, 10, 50)
	if s.TP != 0 {
		t.Fatal("detection beyond lead must not match")
	}
}
