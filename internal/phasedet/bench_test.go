package phasedet

import (
	"math/rand"
	"testing"
)

func benchStream(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		pool := 0x400000 + uint64(rng.Intn(5))*0x40
		if (i/5000)%2 == 1 {
			pool = 0x500000 + uint64(rng.Intn(5))*0x40
		}
		xs[i] = float64(pool)
	}
	return xs
}

func BenchmarkKSWIN(b *testing.B) {
	xs := benchStream(20_000)
	b.SetBytes(int64(len(xs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := NewKSWIN(KSWINConfig{Seed: 1})
		for _, x := range xs {
			det.Observe(x)
		}
	}
}

func BenchmarkSoftKSWIN(b *testing.B) {
	xs := benchStream(20_000)
	b.SetBytes(int64(len(xs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := NewSoftKSWIN(KSWINConfig{Seed: 1})
		for _, x := range xs {
			det.Observe(x)
		}
	}
}

func BenchmarkKSStatistic(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 30)
	y := make([]float64, 30)
	for i := range x {
		x[i], y[i] = rng.Float64(), rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSStatistic(x, y)
	}
}
