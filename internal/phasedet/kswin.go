// Package phasedet implements the paper's phase-transition detectors:
// the unsupervised KSWIN baseline and its Soft-KSWIN variant (Algorithm 2)
// for the phase-label-inaccessible scenario, and a CART decision tree plus
// its Soft-DT variant for the label-accessible scenario, together with the
// precision/recall/F1 scoring of Table 4.
package phasedet

import (
	"math"
	"math/rand"
	"sort"
)

// Detector consumes a PC stream one observation at a time and reports phase
// transitions.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Observe consumes the next program counter (as a real-valued sample)
	// and reports whether a phase transition is declared at this point.
	Observe(x float64) bool
	// Reset returns the detector to its initial state.
	Reset()
}

// KSStatistic computes the two-sample Kolmogorov-Smirnov statistic
// D = sup |F_a(x) - F_b(x)| between the empirical CDFs of a and b (Eq. 2).
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	for i < len(as) && j < len(bs) {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// KSThreshold is the rejection threshold of Eq. 5 for significance level
// alpha with equal-size windows of r samples.
func KSThreshold(alpha float64, r int) float64 {
	return math.Sqrt(-math.Log(alpha/2) / float64(r))
}

// KSWINConfig parameterises KSWIN and Soft-KSWIN.
type KSWINConfig struct {
	// Alpha is the K-S significance level (paper notes high sensitivity;
	// default 1e-4 per the KSWIN reference implementation).
	Alpha float64
	// WindowSize w is the sliding-window length (default 300).
	WindowSize int
	// RecentSize r is the recent-sample window length (default 30).
	RecentSize int
	// SoftThreshold th_r is Soft-KSWIN's required detection ratio
	// (default 0.5, Algorithm 2).
	SoftThreshold float64
	// Seed drives history-window sampling.
	Seed int64
}

func (c KSWINConfig) withDefaults() KSWINConfig {
	if c.Alpha == 0 {
		c.Alpha = 1e-4
	}
	if c.WindowSize == 0 {
		c.WindowSize = 300
	}
	if c.RecentSize == 0 {
		c.RecentSize = 30
	}
	if c.SoftThreshold == 0 {
		c.SoftThreshold = 0.5
	}
	return c
}

// KSWIN is the hard-threshold windowing K-S detector (Raab et al. 2020):
// it declares a transition the moment D(H,R) exceeds the threshold, which —
// as Fig. 5a/9 show — fires on impulse pattern shifts inside a phase.
type KSWIN struct {
	cfg       KSWINConfig
	threshold float64
	rng       *rand.Rand
	window    []float64
}

// NewKSWIN builds the hard detector.
func NewKSWIN(cfg KSWINConfig) *KSWIN {
	cfg = cfg.withDefaults()
	return &KSWIN{
		cfg:       cfg,
		threshold: KSThreshold(cfg.Alpha, cfg.RecentSize),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Name implements Detector.
func (k *KSWIN) Name() string { return "kswin" }

// Reset implements Detector.
func (k *KSWIN) Reset() {
	k.window = k.window[:0]
	k.rng = rand.New(rand.NewSource(k.cfg.Seed))
}

// Observe implements Detector.
func (k *KSWIN) Observe(x float64) bool {
	w, r := k.cfg.WindowSize, k.cfg.RecentSize
	if len(k.window) < w {
		k.window = append(k.window, x)
		return false
	}
	copy(k.window, k.window[1:])
	k.window[w-1] = x
	recent := k.window[w-r:]
	hist := sampleUniform(k.rng, k.window[:w-r], r)
	if KSStatistic(hist, recent) > k.threshold {
		// Hard detection: fire immediately and restart from the recent
		// window (the reference KSWIN behaviour).
		k.window = append(k.window[:0], recent...)
		return true
	}
	return false
}

// SoftKSWIN is Algorithm 2: after a first positive K-S detection it keeps
// sampling history only from points that predate the suspected shift, counts
// positive detections until a full recent window of fresh samples has
// arrived, and only declares a transition when the detection ratio exceeds
// SoftThreshold — suppressing the impulse-shift false positives of KSWIN at
// the cost of a ~r-sample lag.
type SoftKSWIN struct {
	cfg       KSWINConfig
	threshold float64
	rng       *rand.Rand
	window    []float64
	counter   int
	detection int
}

// NewSoftKSWIN builds the soft detector.
func NewSoftKSWIN(cfg KSWINConfig) *SoftKSWIN {
	cfg = cfg.withDefaults()
	return &SoftKSWIN{
		cfg:       cfg,
		threshold: KSThreshold(cfg.Alpha, cfg.RecentSize),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Name implements Detector.
func (k *SoftKSWIN) Name() string { return "soft-kswin" }

// Reset implements Detector.
func (k *SoftKSWIN) Reset() {
	k.window = k.window[:0]
	k.counter, k.detection = 0, 0
	k.rng = rand.New(rand.NewSource(k.cfg.Seed))
}

// Observe implements Detector.
func (k *SoftKSWIN) Observe(x float64) bool {
	w, r := k.cfg.WindowSize, k.cfg.RecentSize
	if len(k.window) < w {
		k.window = append(k.window, x)
		return false
	}
	copy(k.window, k.window[1:])
	k.window[w-1] = x
	recent := k.window[w-r:]
	// Soft history window H' excludes the most recent counter samples,
	// which may already belong to the new pattern (Eq. 6).
	histEnd := w - r - k.counter
	if histEnd < r {
		histEnd = r // keep a minimal unpolluted pool
	}
	hist := sampleUniform(k.rng, k.window[:histEnd], r)
	positive := KSStatistic(hist, recent) > k.threshold

	if k.counter == 0 {
		if positive {
			k.counter, k.detection = 1, 1
		}
		return false
	}
	k.counter++
	if positive {
		k.detection++
	}
	if k.counter < 2*r {
		return false
	}
	// An entirely new recent window has been sampled since the first
	// positive: decide. A genuine transition keeps testing positive on the
	// now-fresh recent window; an impulse shift has reverted by now, so the
	// current test is negative and the pending detection is dismissed.
	ratio := float64(k.detection) / float64(k.counter)
	k.counter, k.detection = 0, 0
	if positive && ratio > k.cfg.SoftThreshold {
		// Transition confirmed: reset the model onto the new pattern.
		k.window = append(k.window[:0], recent...)
		return true
	}
	return false
}

// sampleUniform draws n samples uniformly (with replacement) from pool.
func sampleUniform(rng *rand.Rand, pool []float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = pool[rng.Intn(len(pool))]
	}
	return out
}
