package phasedet

import "fmt"

// Score is a precision/recall/F1 triple (Table 4).
type Score struct {
	Precision float64
	Recall    float64
	TP, FP    int
	Missed    int
}

// F1 is the harmonic mean of precision and recall.
func (s Score) F1() float64 {
	if s.Precision+s.Recall == 0 {
		return 0
	}
	return 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
}

func (s Score) String() string {
	return fmt.Sprintf("P=%.4f R=%.4f F1=%.4f (tp=%d fp=%d miss=%d)",
		s.Precision, s.Recall, s.F1(), s.TP, s.FP, s.Missed)
}

// EvaluateDetections scores detected transition indices against ground-truth
// indices. A detection within [truth-lead, truth+tolerance] matches that
// truth — detectors lag the transition (they need samples of the new phase),
// but a small lead is legitimate when the ground truth marks the start of
// the first *long* segment and the detector caught a short precursor
// segment of the same new phase. Each truth may be matched by multiple
// detections but only the first is a true positive — duplicates and
// unmatched detections are false positives.
func EvaluateDetections(detected, truth []int, lead, tolerance int) Score {
	matched := make([]bool, len(truth))
	var s Score
	for _, d := range detected {
		ok := false
		for ti, t := range truth {
			if d >= t-lead && d <= t+tolerance && !matched[ti] {
				matched[ti] = true
				ok = true
				break
			}
		}
		if ok {
			s.TP++
		} else {
			s.FP++
		}
	}
	for _, m := range matched {
		if !m {
			s.Missed++
		}
	}
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	if len(truth) > 0 {
		s.Recall = float64(len(truth)-s.Missed) / float64(len(truth))
	}
	return s
}

// RunDetector feeds xs through d and returns the indices where it fired.
func RunDetector(d Detector, xs []float64) []int {
	var out []int
	for i, x := range xs {
		if d.Observe(x) {
			out = append(out, i)
		}
	}
	return out
}
