package phasedet

import (
	"fmt"
	"math"
	"sort"
)

// DecisionTree is a CART classifier (gini impurity, axis-aligned splits)
// used for supervised phase classification from PC-window features.
type DecisionTree struct {
	MaxDepth       int
	MinSamplesLeaf int
	root           *dtNode
	numFeatures    int
}

type dtNode struct {
	feature     int
	threshold   float64
	left, right *dtNode
	leafClass   int
	isLeaf      bool
}

// NewDecisionTree builds an untrained tree with the given limits.
func NewDecisionTree(maxDepth, minSamplesLeaf int) *DecisionTree {
	if maxDepth <= 0 {
		maxDepth = 8
	}
	if minSamplesLeaf <= 0 {
		minSamplesLeaf = 4
	}
	return &DecisionTree{MaxDepth: maxDepth, MinSamplesLeaf: minSamplesLeaf}
}

// Fit trains on feature rows X with integer labels y.
func (t *DecisionTree) Fit(X [][]float64, y []int) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("phasedet: fit needs matching non-empty X,y (%d,%d)", len(X), len(y))
	}
	t.numFeatures = len(X[0])
	for i, row := range X {
		if len(row) != t.numFeatures {
			return fmt.Errorf("phasedet: row %d has %d features, want %d", i, len(row), t.numFeatures)
		}
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, 0)
	return nil
}

func (t *DecisionTree) build(X [][]float64, y []int, idx []int, depth int) *dtNode {
	counts := map[int]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	majority, best := 0, -1
	for cls, n := range counts {
		if n > best || (n == best && cls < majority) {
			majority, best = cls, n
		}
	}
	if depth >= t.MaxDepth || len(counts) == 1 || len(idx) < 2*t.MinSamplesLeaf {
		return &dtNode{isLeaf: true, leafClass: majority}
	}
	feat, thr, gain := t.bestSplit(X, y, idx)
	if gain <= 0 {
		return &dtNode{isLeaf: true, leafClass: majority}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < t.MinSamplesLeaf || len(ri) < t.MinSamplesLeaf {
		return &dtNode{isLeaf: true, leafClass: majority}
	}
	return &dtNode{
		feature:   feat,
		threshold: thr,
		left:      t.build(X, y, li, depth+1),
		right:     t.build(X, y, ri, depth+1),
	}
}

func gini(counts map[int]int, total int) float64 {
	if total == 0 {
		return 0
	}
	// Accumulate in sorted class order: the impurity sum is float and
	// non-associative, and split selection tie-breaks on exact values.
	classes := make([]int, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	g := 1.0
	for _, c := range classes {
		p := float64(counts[c]) / float64(total)
		g -= p * p
	}
	return g
}

func (t *DecisionTree) bestSplit(X [][]float64, y []int, idx []int) (feat int, thr, gain float64) {
	parent := map[int]int{}
	for _, i := range idx {
		parent[y[i]]++
	}
	parentGini := gini(parent, len(idx))
	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0
	vals := make([]float64, 0, len(idx))
	for f := 0; f < t.numFeatures; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		// Candidate thresholds: midpoints between consecutive *distinct*
		// values (features often take few values in long runs), subsampled
		// to bound cost.
		distinct := vals[:0]
		for k, v := range vals {
			if k == 0 || v != distinct[len(distinct)-1] {
				distinct = append(distinct, v)
			}
		}
		step := len(distinct)/32 + 1
		for k := step; k < len(distinct); k += step {
			cand := (distinct[k] + distinct[k-1]) / 2
			lc, rc := map[int]int{}, map[int]int{}
			ln := 0
			for _, i := range idx {
				if X[i][f] <= cand {
					lc[y[i]]++
					ln++
				} else {
					rc[y[i]]++
				}
			}
			rn := len(idx) - ln
			if ln == 0 || rn == 0 {
				continue
			}
			w := parentGini -
				(float64(ln)*gini(lc, ln)+float64(rn)*gini(rc, rn))/float64(len(idx))
			if w > bestGain {
				bestGain, bestFeat, bestThr = w, f, cand
			}
		}
	}
	return bestFeat, bestThr, bestGain
}

// Predict classifies one feature row.
func (t *DecisionTree) Predict(x []float64) int {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafClass
}

// Depth reports the trained tree's depth (tests).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *dtNode) int {
	if n == nil || n.isLeaf {
		return 0
	}
	return 1 + int(math.Max(float64(depthOf(n.left)), float64(depthOf(n.right))))
}

// --- PC-window featurisation shared by the DT detectors ---

// PCFeaturizer turns the most recent window of PCs into a bucket-histogram
// feature vector. PCs cluster by phase (Fig. 2b), so bucket frequencies are
// a near-perfect phase signature.
type PCFeaturizer struct {
	Window  int
	Buckets int
	recent  []float64
}

// NewPCFeaturizer builds a featurizer with the given window and bucket count.
func NewPCFeaturizer(window, buckets int) *PCFeaturizer {
	if window <= 0 {
		window = 64
	}
	if buckets <= 0 {
		buckets = 16
	}
	return &PCFeaturizer{Window: window, Buckets: buckets}
}

// Push adds a PC observation; it reports whether the window is warm.
func (f *PCFeaturizer) Push(x float64) bool {
	if len(f.recent) < f.Window {
		f.recent = append(f.recent, x)
	} else {
		copy(f.recent, f.recent[1:])
		f.recent[f.Window-1] = x
	}
	return len(f.recent) == f.Window
}

// Features returns the normalised bucket histogram of the current window.
func (f *PCFeaturizer) Features() []float64 {
	out := make([]float64, f.Buckets)
	if len(f.recent) == 0 {
		return out
	}
	for _, x := range f.recent {
		out[f.bucket(x)]++
	}
	for i := range out {
		out[i] /= float64(len(f.recent))
	}
	return out
}

func (f *PCFeaturizer) bucket(x float64) int {
	// PCs are code addresses with 0x40 spacing (low bits constant); a
	// multiplicative hash followed by folding the high bits down spreads
	// them across buckets.
	u := uint64(x)
	u ^= u >> 17
	u *= 0x9e3779b97f4a7c15
	u ^= u >> 33
	return int(u % uint64(f.Buckets))
}

// Reset clears the window.
func (f *PCFeaturizer) Reset() { f.recent = f.recent[:0] }

// DTDetector predicts the current phase with a trained decision tree every
// observation and fires on any change between consecutive predictions —
// the hard supervised baseline of Section 4.2.2.
type DTDetector struct {
	Tree *DecisionTree
	Feat *PCFeaturizer
	last int
	warm bool
}

// NewDTDetector wraps a trained tree.
func NewDTDetector(tree *DecisionTree, window, buckets int) *DTDetector {
	return &DTDetector{Tree: tree, Feat: NewPCFeaturizer(window, buckets)}
}

// Name implements Detector.
func (d *DTDetector) Name() string { return "dt" }

// Reset implements Detector.
func (d *DTDetector) Reset() { d.Feat.Reset(); d.warm = false; d.last = 0 }

// Observe implements Detector.
func (d *DTDetector) Observe(x float64) bool {
	if !d.Feat.Push(x) {
		return false
	}
	pred := d.Tree.Predict(d.Feat.Features())
	if !d.warm {
		d.warm = true
		d.last = pred
		return false
	}
	if pred != d.last {
		d.last = pred
		return true
	}
	return false
}

// SoftDTDetector stores recent phase inferences in a queue and compares the
// modes of its head and tail halves, firing only when the two modes differ —
// Section 4.2.2's soft supervised detector.
type SoftDTDetector struct {
	Tree      *DecisionTree
	Feat      *PCFeaturizer
	QueueSize int
	queue     []int
	inDiff    bool
}

// NewSoftDTDetector wraps a trained tree with a soft result queue.
func NewSoftDTDetector(tree *DecisionTree, window, buckets, queueSize int) *SoftDTDetector {
	if queueSize <= 0 {
		queueSize = 40
	}
	return &SoftDTDetector{Tree: tree, Feat: NewPCFeaturizer(window, buckets), QueueSize: queueSize}
}

// Name implements Detector.
func (d *SoftDTDetector) Name() string { return "soft-dt" }

// Reset implements Detector.
func (d *SoftDTDetector) Reset() {
	d.Feat.Reset()
	d.queue = d.queue[:0]
	d.inDiff = false
}

// Observe implements Detector.
func (d *SoftDTDetector) Observe(x float64) bool {
	if !d.Feat.Push(x) {
		return false
	}
	pred := d.Tree.Predict(d.Feat.Features())
	if len(d.queue) < d.QueueSize {
		d.queue = append(d.queue, pred)
		return false
	}
	copy(d.queue, d.queue[1:])
	d.queue[d.QueueSize-1] = pred
	half := d.QueueSize / 2
	headMode := mode(d.queue[:half])
	tailMode := mode(d.queue[half:])
	if headMode != tailMode {
		if !d.inDiff {
			d.inDiff = true
			return true
		}
		return false
	}
	d.inDiff = false
	return false
}

func mode(xs []int) int {
	counts := map[int]int{}
	best, bestN := 0, -1
	for _, x := range xs {
		counts[x]++
		if counts[x] > bestN || (counts[x] == bestN && x < best) {
			best, bestN = x, counts[x]
		}
	}
	return best
}
