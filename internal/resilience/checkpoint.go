package resilience

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// Checkpoint file envelope (little-endian):
//
//	offset 0   magic    uint64  "MPCK"
//	offset 8   version  uint64  ckptVersion
//	offset 16  plen     uint64  payload byte length (patched after streaming)
//	offset 24  pcrc     uint64  CRC-64/ECMA of the payload (patched)
//	offset 32  metaLen  uint32
//	offset 36  meta     metaLen bytes (caller's fingerprint string)
//	...        payload  plen bytes
//
// Saves are atomic: the envelope is streamed to <name>.tmp, the length and
// checksum are patched in, the file is fsynced, and only then renamed over
// the final name — a crash mid-save leaves the previous checkpoint (or
// nothing) in place, never a torn file. Loads verify the whole envelope
// before the payload reader is handed to the caller, so corruption of any
// kind — truncation, bit flips, a foreign or future format — surfaces as a
// *CorruptError and is treated as a cache miss, never a panic.
const (
	ckptMagic   = uint64(0x4d50434b) // "MPCK"
	ckptVersion = uint64(1)
	// ckptHeaderSize is the fixed-size prefix before the meta string.
	ckptHeaderSize = 36
	// ckptMaxMeta bounds the meta string so a corrupt length field cannot
	// drive a huge allocation.
	ckptMaxMeta = 1 << 20
)

var ckptCRCTable = crc64.MakeTable(crc64.ECMA)

// ErrCheckpointMiss is returned (wrapped) by Store.Verify for a checkpoint
// that does not exist. Load folds misses into ok=false.
var ErrCheckpointMiss = errors.New("resilience: checkpoint miss")

// errStale marks an existing checkpoint whose meta fingerprint does not
// match the caller's — written by a different configuration, so unusable.
var errStale = errors.New("resilience: checkpoint stale (meta mismatch)")

// CorruptError reports a checkpoint that failed envelope verification.
type CorruptError struct {
	Path   string
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("resilience: corrupt checkpoint %s: %s", e.Path, e.Reason)
}

// IsCorrupt reports whether err is (or wraps) a *CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// StoreStats is a snapshot of a store's counters.
type StoreStats struct {
	Saves, Hits, Misses, Corruptions uint64
}

// Store is an atomic, checksummed checkpoint directory. A nil *Store is
// valid: Save and Load become no-ops (always a miss), so pipeline code can
// thread an optional store without conditionals.
type Store struct {
	dir    string
	inject *Injector
	events *Log

	saves, hits, misses, corruptions atomic.Uint64
}

// NewStore opens (creating if needed) a checkpoint directory. inject arms
// the checkpoint-io fault point; events receives corruption reports. Both
// may be nil.
func NewStore(dir string, inject *Injector, events *Log) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resilience: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resilience: create checkpoint dir: %w", err)
	}
	return &Store{dir: dir, inject: inject, events: events}, nil
}

// Dir returns the backing directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	return StoreStats{
		Saves:       s.saves.Load(),
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corruptions: s.corruptions.Load(),
	}
}

// Path returns the on-disk path for key.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, sanitizeKey(key)+".ckpt")
}

// sanitizeKey maps an arbitrary key ("gpop/pr/rmat") to a flat file name.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, key)
}

// Save atomically writes the checkpoint for key: meta is the caller's
// configuration fingerprint (compared on load), write streams the payload.
// A nil store is a no-op. An injected checkpoint-io fault of KindCorrupt
// lets the save succeed and then flips one payload byte on disk, so the
// fault surfaces exactly the way real bit rot would: at load time, as a
// checksum mismatch.
func (s *Store) Save(key, meta string, write func(io.Writer) error) error {
	if s == nil {
		return nil
	}
	var corrupt bool
	if err := s.inject.Fire(PointCheckpointIO); err != nil {
		var ie *InjectedError
		if errors.As(err, &ie) && ie.Kind == KindCorrupt {
			corrupt = true
		} else {
			return err
		}
	}
	path := s.Path(key)
	if err := s.save(path, meta, write); err != nil {
		return err
	}
	s.saves.Add(1)
	if corrupt {
		if err := flipLastByte(path); err != nil {
			return err
		}
		s.events.Add("checkpoint", "injected-corruption", path)
	}
	return nil
}

func (s *Store) save(path, meta string, write func(io.Writer) error) (err error) {
	if len(meta) > ckptMaxMeta {
		return fmt.Errorf("resilience: checkpoint meta too large (%d bytes)", len(meta))
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()      //mpgraph:allow errdrop -- already failing; the Close error would mask the root cause
			os.Remove(tmp) //mpgraph:allow errdrop -- best-effort cleanup of the temp file on the failure path
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<20)
	for _, v := range []uint64{ckptMagic, ckptVersion, 0, 0} { // plen/pcrc patched below
		if err = binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err = binary.Write(bw, binary.LittleEndian, uint32(len(meta))); err != nil {
		return err
	}
	if _, err = bw.WriteString(meta); err != nil {
		return err
	}
	crc := crc64.New(ckptCRCTable)
	cw := &countingWriter{w: io.MultiWriter(bw, crc)}
	if err = write(cw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	// Patch the payload length and checksum into the fixed header slots.
	var patch [16]byte
	binary.LittleEndian.PutUint64(patch[0:8], uint64(cw.n))
	binary.LittleEndian.PutUint64(patch[8:16], crc.Sum64())
	if _, err = f.WriteAt(patch[:], 16); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load opens, verifies, and reads the checkpoint for key. ok is true only
// when the checkpoint existed, carried the expected meta fingerprint,
// passed checksum verification, and read consumed it without error. A
// missing, stale, or corrupt checkpoint is a cache miss (ok=false, nil
// error) — corruption is additionally counted and logged as a degradation
// event. A non-nil error is reserved for injected checkpoint-io faults and
// read-callback failures.
func (s *Store) Load(key, meta string, read func(io.Reader) error) (ok bool, err error) {
	if s == nil {
		return false, nil
	}
	if err := s.inject.Fire(PointCheckpointIO); err != nil {
		var ie *InjectedError
		if errors.As(err, &ie) && ie.Kind == KindCorrupt {
			// Corruption is a save-side fault; on load it degrades to a miss.
			s.misses.Add(1)
			return false, nil
		}
		return false, err
	}
	err = s.load(key, meta, read)
	switch {
	case err == nil:
		s.hits.Add(1)
		return true, nil
	case errors.Is(err, ErrCheckpointMiss), errors.Is(err, errStale):
		s.misses.Add(1)
		return false, nil
	case IsCorrupt(err):
		s.corruptions.Add(1)
		s.events.Add("checkpoint", "corrupt-checkpoint", err.Error())
		return false, nil
	default:
		return false, err
	}
}

func (s *Store) load(key, meta string, read func(io.Reader) error) error {
	path := s.Path(key)
	gotMeta, plen, err := s.verifyEnvelope(path)
	if err != nil {
		return err
	}
	if gotMeta != meta {
		return errStale
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrCheckpointMiss, err)
	}
	defer f.Close() //mpgraph:allow errdrop -- read-only descriptor; the payload was already checksummed
	payloadOff := int64(ckptHeaderSize + len(gotMeta))
	if _, err := f.Seek(payloadOff, io.SeekStart); err != nil {
		return err
	}
	return read(bufio.NewReaderSize(io.LimitReader(f, int64(plen)), 1<<20))
}

// Verify checks the envelope of key's checkpoint — magic, version, meta
// bounds, exact file size, payload checksum — without handing the payload
// to anyone. Returns nil for a valid checkpoint, ErrCheckpointMiss
// (wrapped) if absent, or a *CorruptError describing the first defect.
func (s *Store) Verify(key string) error {
	if s == nil {
		return ErrCheckpointMiss
	}
	_, _, err := s.verifyEnvelope(s.Path(key)) //mpgraph:allow errdrop -- Verify is the yes/no form; Load consumes the meta and length
	return err
}

// verifyEnvelope validates the file and returns its meta string and payload
// length. It reads the whole payload once to check the CRC; Load then
// reopens for the caller. Two passes cost a second read of at most a few
// megabytes — cheap insurance for never handing a torn checkpoint to a
// deserializer.
func (s *Store) verifyEnvelope(path string) (meta string, plen uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", 0, fmt.Errorf("%w: %s", ErrCheckpointMiss, path)
		}
		return "", 0, err
	}
	defer f.Close() //mpgraph:allow errdrop -- read-only descriptor
	br := bufio.NewReaderSize(f, 1<<20)

	var hdr [4]uint64 // magic, version, plen, pcrc
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return "", 0, &CorruptError{Path: path, Reason: "truncated header"}
		}
	}
	if hdr[0] != ckptMagic {
		return "", 0, &CorruptError{Path: path, Reason: fmt.Sprintf("bad magic %#x", hdr[0])}
	}
	if hdr[1] != ckptVersion {
		return "", 0, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported version %d (want %d)", hdr[1], ckptVersion)}
	}
	var metaLen uint32
	if err := binary.Read(br, binary.LittleEndian, &metaLen); err != nil {
		return "", 0, &CorruptError{Path: path, Reason: "truncated meta length"}
	}
	if metaLen > ckptMaxMeta {
		return "", 0, &CorruptError{Path: path, Reason: fmt.Sprintf("implausible meta length %d", metaLen)}
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaBuf); err != nil {
		return "", 0, &CorruptError{Path: path, Reason: "truncated meta"}
	}
	st, err := f.Stat()
	if err != nil {
		return "", 0, err
	}
	wantSize := int64(ckptHeaderSize) + int64(metaLen) + int64(hdr[2])
	if st.Size() != wantSize {
		return "", 0, &CorruptError{Path: path, Reason: fmt.Sprintf("size %d, envelope declares %d", st.Size(), wantSize)}
	}
	crc := crc64.New(ckptCRCTable)
	n, err := io.Copy(crc, io.LimitReader(br, int64(hdr[2])))
	if err != nil {
		return "", 0, err
	}
	if uint64(n) != hdr[2] {
		return "", 0, &CorruptError{Path: path, Reason: "truncated payload"}
	}
	if crc.Sum64() != hdr[3] {
		return "", 0, &CorruptError{Path: path, Reason: fmt.Sprintf("payload checksum %#x, want %#x", crc.Sum64(), hdr[3])}
	}
	return string(metaBuf), hdr[2], nil
}

// flipLastByte XOR-flips the final byte of the file at path (the injected-
// corruption primitive: the last payload byte breaks the CRC without
// touching the envelope fields).
func flipLastByte(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close() //mpgraph:allow errdrop -- WriteAt below is unbuffered; Close cannot lose the flip
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return nil
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], st.Size()-1); err != nil {
		return err
	}
	b[0] ^= 0xff
	_, err = f.WriteAt(b[:], st.Size()-1)
	return err
}

// countingWriter counts the bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
