// Package resilience is the fault-tolerance layer for the long-running
// pipeline (DESIGN.md §9): a deterministic, seeded fault-injection harness
// with named injection points, panic-recovery boundaries that convert
// worker panics into errors with captured stacks, a degradation event log,
// and an atomic, checksummed on-disk checkpoint store.
//
// The paper's practicality story assumes the ML prefetcher is always
// healthy; a production pipeline must instead survive crashes mid-run,
// poisoned model state, and slow inference. Everything here is built so
// the *success* path stays byte-deterministic: the injector counts hits
// with its own state (no wall clock), events carry sequence numbers
// instead of timestamps, and checkpoints round-trip float64 parameters
// bit-exactly.
package resilience

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic, carrying the boundary name, the panic
// value, and the stack captured at recovery time.
type PanicError struct {
	// Boundary names the recovery point (e.g. "experiments.forEachIndex").
	Boundary string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured inside the deferred recover.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: panic recovered at %s: %v", e.Boundary, e.Value)
}

// Guard runs fn and converts a panic into a *PanicError instead of letting
// it unwind past the boundary. It is the designated panic boundary the
// golifetime analyzer looks for: goroutine bodies in the long-running
// packages must route their work through Guard (or a function documented
// with the mpgraph:recovers marker) so one poisoned worker cannot kill a
// whole sweep.
//
// mpgraph:recovers
func Guard(boundary string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Boundary: boundary, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// GuardVal is Guard for compute functions returning a value. On panic the
// zero value is returned alongside the *PanicError.
//
// mpgraph:recovers
func GuardVal[T any](boundary string, fn func() (T, error)) (val T, err error) {
	err = Guard(boundary, func() error {
		var inner error
		val, inner = fn()
		return inner
	})
	return val, err
}
