package resilience

import (
	"errors"
	"strings"
	"testing"
)

// TestParseInjectorServePoints pins the three serving-daemon injection
// points into the CLI grammar: each parses in both @N and ~P form and fires
// with the armed kind.
func TestParseInjectorServePoints(t *testing.T) {
	in, err := ParseInjector("serve-admit:err@1, serve-session:panic@2, serve-flush:corrupt@1", 1)
	if err != nil {
		t.Fatal(err)
	}
	var ie *InjectedError
	if err := in.Fire(PointServeAdmit); !errors.As(err, &ie) || ie.Kind != KindErr {
		t.Fatalf("serve-admit hit = %v, want injected err", err)
	}
	if err := in.Fire(PointServeSession); err != nil {
		t.Fatalf("serve-session hit 1 = %v, want clean (armed @2)", err)
	}
	err = Guard("test", func() error { return in.Fire(PointServeSession) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("serve-session hit 2 = %v, want recovered panic", err)
	}
	if err := in.Fire(PointServeFlush); !errors.As(err, &ie) || ie.Kind != KindCorrupt {
		t.Fatalf("serve-flush hit = %v, want injected corrupt", err)
	}

	// The chaos drill's probabilistic form parses for every serve point and
	// reproduces its firing sequence per seed.
	for _, spec := range []string{"serve-admit:err~0.3", "serve-session:panic~0.05", "serve-flush:err~0.1"} {
		a, err := ParseInjector(spec, 99)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		b, err := ParseInjector(spec, 99)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		point := Point(strings.SplitN(spec, ":", 2)[0])
		for i := 0; i < 64; i++ {
			ae := Guard("test", func() error { return a.Fire(point) })
			be := Guard("test", func() error { return b.Fire(point) })
			if (ae != nil) != (be != nil) {
				t.Fatalf("%q: firing sequences diverge at hit %d for the same seed", spec, i+1)
			}
		}
	}

	// Points() is what both the parser and the arming invariants validate
	// against; the serve points must be enumerated there.
	want := map[Point]bool{PointServeAdmit: true, PointServeSession: true, PointServeFlush: true}
	for _, p := range Points() {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("Points() is missing %v", want)
	}
}

// TestParseInjectorRejectsUnknownServeLikePoints: a misspelled serve point
// must be a parse error — a chaos drill that silently arms nothing would
// "pass" without injecting a single fault.
func TestParseInjectorRejectsUnknownServeLikePoints(t *testing.T) {
	for _, bad := range []string{
		"serve-admission:err@1", // misspelled point
		"serve-session:prob=0.05", // wrong grammar for the probabilistic form
		"serve-flush:drop@1",    // unknown kind
	} {
		if _, err := ParseInjector(bad, 1); err == nil {
			t.Fatalf("spec %q must fail to parse", bad)
		}
	}
}

// TestArmRejectsUnknownPointOrKind: the programmatic arming API fails
// loudly (invariant panic) on unknown names instead of arming a no-op.
func TestArmRejectsUnknownPointOrKind(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		fn()
	}
	mustPanic("Arm(unknown point)", func() {
		NewInjector(1).Arm(Point("serve-admission"), KindErr, 1)
	})
	mustPanic("Arm(unknown kind)", func() {
		NewInjector(1).Arm(PointServeAdmit, Kind("explode"), 1)
	})
	mustPanic("ArmProb(unknown point)", func() {
		NewInjector(1).ArmProb(Point("sesion"), KindPanic, 0.5)
	})
	mustPanic("ArmProb(unknown kind)", func() {
		NewInjector(1).ArmProb(PointServeFlush, Kind(""), 0.5)
	})

	// Valid arms still chain.
	in := NewInjector(1).Arm(PointServeAdmit, KindErr, 1).ArmProb(PointServeFlush, KindErr, 1)
	if err := in.Fire(PointServeAdmit); err == nil {
		t.Fatal("valid Arm must still fire")
	}
	if err := in.Fire(PointServeFlush); err == nil {
		t.Fatal("valid ArmProb must still fire")
	}
}
