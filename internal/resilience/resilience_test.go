package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestGuardPassesThrough(t *testing.T) {
	if err := Guard("t", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := errors.New("boom")
	if err := Guard("t", func() error { return want }); err != want {
		t.Fatalf("err = %v, want pass-through", err)
	}
	v, err := GuardVal("t", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("GuardVal = %d, %v", v, err)
	}
}

func TestGuardRecoversPanic(t *testing.T) {
	err := Guard("boundary-name", func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Boundary != "boundary-name" || pe.Value != "kaboom" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(pe.Error(), "boundary-name") || !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q", pe.Error())
	}

	v, err := GuardVal("t", func() (int, error) { panic("v") })
	if v != 0 || !errors.As(err, &pe) {
		t.Fatalf("GuardVal after panic = %d, %v", v, err)
	}
}

func TestInjectorNilAndUnarmed(t *testing.T) {
	var nilInj *Injector
	if err := nilInj.Fire(PointSweepWorker); err != nil {
		t.Fatal(err)
	}
	if nilInj.Hits(PointSweepWorker) != 0 || nilInj.Fired(PointSweepWorker) != 0 {
		t.Fatal("nil injector must report zero counters")
	}
	in := NewInjector(1)
	if err := in.Fire(PointSweepWorker); err != nil {
		t.Fatal("unarmed point must not fire")
	}
	if in.Hits(PointSweepWorker) != 0 {
		t.Fatal("unarmed points are not counted")
	}
}

func TestInjectorFiresExactlyOnceAtN(t *testing.T) {
	in := NewInjector(1).Arm(PointTrainEpoch, KindErr, 3)
	var errs []error
	for i := 0; i < 6; i++ {
		errs = append(errs, in.Fire(PointTrainEpoch))
	}
	for i, err := range errs {
		if i == 2 {
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Point != PointTrainEpoch || ie.Kind != KindErr || ie.Hit != 3 {
				t.Fatalf("hit 3: err = %v", err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected %v", i+1, err)
		}
	}
	if in.Hits(PointTrainEpoch) != 6 || in.Fired(PointTrainEpoch) != 1 {
		t.Fatalf("counters = %d hits / %d fired", in.Hits(PointTrainEpoch), in.Fired(PointTrainEpoch))
	}
}

func TestInjectorPanicKindPanics(t *testing.T) {
	in := NewInjector(1).Arm(PointSweepWorker, KindPanic, 1)
	err := Guard("test", func() error { return in.Fire(PointSweepWorker) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	ie, ok := pe.Value.(*InjectedError)
	if !ok || ie.Kind != KindPanic {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

func TestInjectorProbabilisticSeeded(t *testing.T) {
	run := func(seed int64) []bool {
		in := NewInjector(seed).ArmProb(PointSweepWorker, KindErr, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire(PointSweepWorker) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same firing sequence")
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 over 64 hits fired %d times — not probabilistic", fired)
	}
}

func TestInjectorConcurrentFireExactlyOnce(t *testing.T) {
	in := NewInjector(1).Arm(PointSweepWorker, KindErr, 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				err := Guard("test", func() error { return in.Fire(PointSweepWorker) })
				_ = err //mpgraph:allow errdrop -- counting via Fired below; individual results are racy by design
			}
		}()
	}
	wg.Wait()
	if got := in.Fired(PointSweepWorker); got != 1 {
		t.Fatalf("fired %d times under concurrency, want exactly 1", got)
	}
	if got := in.Hits(PointSweepWorker); got != 200 {
		t.Fatalf("hits = %d, want 200", got)
	}
}

func TestParseInjector(t *testing.T) {
	in, err := ParseInjector("", 1)
	if err != nil || in != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", in, err)
	}
	in, err = ParseInjector("sweep-worker:panic@3, checkpoint-io:corrupt@1", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := in.Fire(PointSweepWorker); err != nil {
			t.Fatalf("hit %d: %v", i+1, err)
		}
	}
	err = Guard("test", func() error { return in.Fire(PointSweepWorker) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("third sweep-worker hit = %v, want panic", err)
	}
	err = in.Fire(PointCheckpointIO)
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Kind != KindCorrupt {
		t.Fatalf("checkpoint-io hit = %v, want corrupt", err)
	}

	in, err = ParseInjector("train-epoch:err~0.5", 7)
	if err != nil || in == nil {
		t.Fatalf("probabilistic spec: %v, %v", in, err)
	}

	for _, bad := range []string{
		"nope",                  // no colon
		"bogus-point:err@1",     // unknown point
		"train-epoch:explode@1", // unknown kind
		"train-epoch:err@0",     // 1-based hit count
		"train-epoch:err@x",     // non-numeric
		"train-epoch:err~1.5",   // probability out of range
		"train-epoch:err",       // missing @N / ~P
	} {
		if _, err := ParseInjector(bad, 1); err == nil {
			t.Fatalf("spec %q must fail to parse", bad)
		}
	}
}

func TestEventLog(t *testing.T) {
	var nilLog *Log
	if nilLog.Add("a", "b", "c") != 0 || nilLog.Len() != 0 || nilLog.Events() != nil {
		t.Fatal("nil log must drop events")
	}
	var buf bytes.Buffer
	if _, err := nilLog.WriteTo(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil log WriteTo must be empty")
	}

	l := &Log{}
	for i := 0; i < 3; i++ {
		l.Add("prefetch/mpgraph", "violation", fmt.Sprintf("v%d", i))
	}
	l.Add("prefetch/mpgraph", "quarantine", "3 violations")
	l.Add("checkpoint", "corrupt-checkpoint", "bad crc")
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	ev := l.Events()
	for i, e := range ev {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if l.Count("prefetch/mpgraph", "violation") != 3 {
		t.Fatal("Count(component, action)")
	}
	if l.Count("", "quarantine") != 1 || l.Count("checkpoint", "") != 1 {
		t.Fatal("Count with wildcard filters")
	}
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quarantine") || !strings.Contains(buf.String(), "bad crc") {
		t.Fatalf("WriteTo output:\n%s", buf.String())
	}
}
