package resilience

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePayload / readPayload are the test's (de)serializer pair.
func writePayload(data []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}
}

func readAll(dst *[]byte) func(io.Reader) error {
	return func(r io.Reader) error {
		b, err := io.ReadAll(r)
		*dst = b
		return err
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB, 0x01, 0x7f}, 1000)
	if err := s.Save("suite-gpop/pr/rmat", "cfg-v1", writePayload(payload)); err != nil {
		t.Fatal(err)
	}
	// The sanitized file must exist and no temp file may linger.
	if _, err := os.Stat(s.Path("suite-gpop/pr/rmat")); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}

	var got []byte
	ok, err := s.Load("suite-gpop/pr/rmat", "cfg-v1", readAll(&got))
	if err != nil || !ok {
		t.Fatalf("Load = %v, %v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload did not round-trip")
	}
	if st := s.Stats(); st.Saves != 1 || st.Hits != 1 || st.Misses != 0 || st.Corruptions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreMissAndStale(t *testing.T) {
	s, err := NewStore(t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	ok, err := s.Load("absent", "m", readAll(&got))
	if err != nil || ok {
		t.Fatalf("missing checkpoint: Load = %v, %v", ok, err)
	}
	if err := s.Verify("absent"); !errors.Is(err, ErrCheckpointMiss) {
		t.Fatalf("Verify(absent) = %v", err)
	}

	if err := s.Save("k", "fingerprint-A", writePayload([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	ok, err = s.Load("k", "fingerprint-B", readAll(&got))
	if err != nil || ok {
		t.Fatalf("stale meta must be a miss: Load = %v, %v", ok, err)
	}
	if st := s.Stats(); st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses", st)
	}
}

func TestStoreOverwrite(t *testing.T) {
	s, err := NewStore(t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", "m", writePayload([]byte("old old old"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", "m", writePayload([]byte("new"))); err != nil {
		t.Fatal(err)
	}
	var got []byte
	ok, err := s.Load("k", "m", readAll(&got))
	if err != nil || !ok || string(got) != "new" {
		t.Fatalf("Load after overwrite = %v, %v, %q", ok, err, got)
	}
}

// TestStoreCorruptionMatrix is the satellite-task coverage: a truncated
// file, a flipped payload byte, and a wrong-version header must each be
// rejected with an error (never a panic) and degrade to a cache miss.
func TestStoreCorruptionMatrix(t *testing.T) {
	cases := []struct {
		name       string
		mutate     func(t *testing.T, path string)
		wantReason string
	}{
		{
			name: "truncated",
			mutate: func(t *testing.T, path string) {
				b := readFile(t, path)
				writeFile(t, path, b[:len(b)-7])
			},
			wantReason: "size",
		},
		{
			name: "truncated-into-header",
			mutate: func(t *testing.T, path string) {
				writeFile(t, path, readFile(t, path)[:11])
			},
			wantReason: "truncated header",
		},
		{
			name: "flipped-payload-byte",
			mutate: func(t *testing.T, path string) {
				b := readFile(t, path)
				b[len(b)-2] ^= 0x40
				writeFile(t, path, b)
			},
			wantReason: "checksum",
		},
		{
			name: "wrong-version-header",
			mutate: func(t *testing.T, path string) {
				b := readFile(t, path)
				binary.LittleEndian.PutUint64(b[8:16], 99)
				writeFile(t, path, b)
			},
			wantReason: "unsupported version",
		},
		{
			name: "bad-magic",
			mutate: func(t *testing.T, path string) {
				b := readFile(t, path)
				binary.LittleEndian.PutUint64(b[0:8], 0xdeadbeef)
				writeFile(t, path, b)
			},
			wantReason: "bad magic",
		},
		{
			name: "empty-file",
			mutate: func(t *testing.T, path string) {
				writeFile(t, path, nil)
			},
			wantReason: "truncated header",
		},
		{
			name: "mid-payload-bit-flip",
			mutate: func(t *testing.T, path string) {
				// Flip a single bit in the middle of the CRC'd payload (the
				// envelope fields stay pristine, so only the checksum can
				// catch it). Header is 36 bytes, meta is "m" (1 byte).
				b := readFile(t, path)
				payloadOff := 36 + 1
				b[payloadOff+(len(b)-payloadOff)/2] ^= 0x01
				writeFile(t, path, b)
			},
			wantReason: "checksum",
		},
		{
			name: "length-field-skew",
			mutate: func(t *testing.T, path string) {
				b := readFile(t, path)
				plen := binary.LittleEndian.Uint64(b[16:24])
				binary.LittleEndian.PutUint64(b[16:24], plen+1)
				writeFile(t, path, b)
			},
			wantReason: "size",
		},
		{
			name: "implausible-meta-length",
			mutate: func(t *testing.T, path string) {
				// A corrupt meta length must be bounds-rejected before it can
				// drive a giant allocation.
				b := readFile(t, path)
				binary.LittleEndian.PutUint32(b[32:36], 1<<30)
				writeFile(t, path, b)
			},
			wantReason: "implausible meta length",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events := &Log{}
			s, err := NewStore(t.TempDir(), nil, events)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Save("k", "m", writePayload(bytes.Repeat([]byte("payload"), 64))); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, s.Path("k"))

			// Verify must return a descriptive *CorruptError, never panic.
			err = s.Verify("k")
			if !IsCorrupt(err) {
				t.Fatalf("Verify = %v, want corrupt", err)
			}
			if !strings.Contains(err.Error(), tc.wantReason) {
				t.Fatalf("Verify = %q, want reason containing %q", err, tc.wantReason)
			}

			// Load must degrade to a recomputable cache miss and log it.
			var got []byte
			ok, err := s.Load("k", "m", readAll(&got))
			if err != nil || ok {
				t.Fatalf("Load of corrupt checkpoint = %v, %v; want miss", ok, err)
			}
			if s.Stats().Corruptions != 1 {
				t.Fatalf("stats = %+v, want 1 corruption", s.Stats())
			}
			if events.Count("checkpoint", "corrupt-checkpoint") != 1 {
				t.Fatalf("events = %v, want one corrupt-checkpoint", events.Events())
			}
		})
	}
}

// TestStoreMetaBitFlipIsStaleMiss: the meta fingerprint is outside the
// payload CRC, so a flipped meta byte surfaces as staleness (the
// fingerprint no longer matches), not corruption — still a cache miss,
// still never a panic, and Verify (which checks the envelope, not the
// caller's fingerprint) still accepts the file.
func TestStoreMetaBitFlipIsStaleMiss(t *testing.T) {
	events := &Log{}
	s, err := NewStore(t.TempDir(), nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", "meta-v1", writePayload([]byte("payload"))); err != nil {
		t.Fatal(err)
	}
	b := readFile(t, s.Path("k"))
	b[36] ^= 0x20 // first meta byte: "meta-v1" -> "Meta-v1"
	writeFile(t, s.Path("k"), b)

	if err := s.Verify("k"); err != nil {
		t.Fatalf("Verify = %v; envelope is intact, want nil", err)
	}
	var got []byte
	ok, err := s.Load("k", "meta-v1", readAll(&got))
	if err != nil || ok {
		t.Fatalf("Load with flipped meta = %v, %v; want stale miss", ok, err)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Corruptions != 0 {
		t.Fatalf("stats = %+v, want 1 miss and 0 corruptions", st)
	}
}

func TestStoreInjectedFaults(t *testing.T) {
	t.Run("err-on-save", func(t *testing.T) {
		in := NewInjector(1).Arm(PointCheckpointIO, KindErr, 1)
		s, err := NewStore(t.TempDir(), in, nil)
		if err != nil {
			t.Fatal(err)
		}
		err = s.Save("k", "m", writePayload([]byte("x")))
		var ie *InjectedError
		if !errors.As(err, &ie) {
			t.Fatalf("Save = %v, want injected error", err)
		}
		if _, err := os.Stat(s.Path("k")); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("failed save must not leave a checkpoint")
		}
	})
	t.Run("corrupt-on-save-detected-on-load", func(t *testing.T) {
		events := &Log{}
		in := NewInjector(1).Arm(PointCheckpointIO, KindCorrupt, 1)
		s, err := NewStore(t.TempDir(), in, events)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Save("k", "m", writePayload([]byte("silently rotted"))); err != nil {
			t.Fatalf("corrupt-kind save must report success: %v", err)
		}
		var got []byte
		ok, err := s.Load("k", "m", readAll(&got))
		if err != nil || ok {
			t.Fatalf("Load = %v, %v; want corruption-driven miss", ok, err)
		}
		if s.Stats().Corruptions != 1 {
			t.Fatalf("stats = %+v", s.Stats())
		}
		if events.Count("checkpoint", "injected-corruption") != 1 || events.Count("checkpoint", "corrupt-checkpoint") != 1 {
			t.Fatalf("events = %v", events.Events())
		}
	})
}

func TestNilStoreIsMiss(t *testing.T) {
	var s *Store
	if err := s.Save("k", "m", writePayload([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Load("k", "m", func(io.Reader) error { t.Fatal("read on nil store"); return nil })
	if err != nil || ok {
		t.Fatalf("nil store Load = %v, %v", ok, err)
	}
	if s.Dir() != "" || s.Stats() != (StoreStats{}) {
		t.Fatal("nil store accessors")
	}
	if err := s.Verify("k"); !errors.Is(err, ErrCheckpointMiss) {
		t.Fatalf("nil store Verify = %v", err)
	}
}

func TestSanitizeKey(t *testing.T) {
	s, err := NewStore(t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Path("suite gpop/pr:rmat")
	base := filepath.Base(p)
	if strings.ContainsAny(base, "/: ") {
		t.Fatalf("unsanitized path %q", base)
	}
	if !strings.HasSuffix(base, ".ckpt") {
		t.Fatalf("path %q missing extension", base)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func writeFile(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
