package resilience

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mpgraph/internal/invariant"
)

// Point names a fault-injection site. The pipeline declares a small, fixed
// set of points; tests and the -inject CLI flag arm them.
type Point string

// The named injection points of the experiment pipeline and the serving
// daemon.
const (
	// PointArtifactBuild fires at the start of every workload artifact
	// build (trace generation + LLC capture).
	PointArtifactBuild Point = "artifact-build"
	// PointTrainEpoch fires at the start of every training epoch.
	PointTrainEpoch Point = "train-epoch"
	// PointSweepWorker fires at the start of every (workload, prefetcher)
	// sweep simulation task.
	PointSweepWorker Point = "sweep-worker"
	// PointCheckpointIO fires on every checkpoint save and load.
	PointCheckpointIO Point = "checkpoint-io"
	// PointServeAdmit fires on every serving-daemon admission decision
	// (session creation), before the session is built.
	PointServeAdmit Point = "serve-admit"
	// PointServeSession fires on every event a serving session's primary
	// prefetcher processes — inside the Guarded degradation boundary, so a
	// panic here benches one session, never the daemon.
	PointServeSession Point = "serve-session"
	// PointServeFlush fires on every prediction-stream flush boundary of a
	// serving session (once per streamed chunk).
	PointServeFlush Point = "serve-flush"
)

// Points lists the valid injection points.
func Points() []Point {
	return []Point{
		PointArtifactBuild, PointTrainEpoch, PointSweepWorker, PointCheckpointIO,
		PointServeAdmit, PointServeSession, PointServeFlush,
	}
}

// Kind selects how an armed point fails.
type Kind string

// The injected failure modes.
const (
	// KindErr makes the point return an *InjectedError.
	KindErr Kind = "err"
	// KindPanic makes the point panic with an *InjectedError — exercising
	// the recovery boundaries.
	KindPanic Kind = "panic"
	// KindCorrupt is interpreted by the checkpoint store: the save
	// succeeds, then a byte of the written file is flipped, so the fault
	// surfaces later as a checksum mismatch on load. Other points treat it
	// like KindErr.
	KindCorrupt Kind = "corrupt"
)

// InjectedError is the failure produced by an armed injection point.
type InjectedError struct {
	Point Point
	Kind  Kind
	// Hit is the 1-based occurrence count at which the point fired.
	Hit uint64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("resilience: injected %s fault at %s (hit %d)", e.Kind, e.Point, e.Hit)
}

// arm is one armed injection point.
type arm struct {
	kind Kind
	// at fires the fault exactly once, on the at-th hit (1-based). 0 means
	// probabilistic mode.
	at uint64
	// prob fires the fault independently on every hit with this seeded
	// probability (only when at == 0).
	prob float64
}

// Injector is the deterministic fault-injection harness. A nil *Injector is
// valid and never fires — production call sites pay one nil check. All
// methods are safe for concurrent use; the hit counters make @N specs
// deterministic for any serial call sequence (the sweep's parallel workers
// observe an arbitrary but still exactly-one firing).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	arms  map[Point]*arm
	hits  map[Point]uint64
	fired map[Point]uint64
}

// NewInjector returns an empty (disarmed) injector whose probabilistic arms
// draw from a rand stream seeded with seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		arms:  map[Point]*arm{},
		hits:  map[Point]uint64{},
		fired: map[Point]uint64{},
	}
}

// Arm arms point to fail with kind on the n-th hit (1-based, exactly once).
// Arming an unknown point or kind is a programmer error and fails loudly
// through the designated invariant helper — a misspelled point would
// otherwise arm nothing, and a chaos drill against it would "pass" without
// ever injecting a fault. The CLI path (ParseInjector) reports the same
// defects as errors before this API is reached.
func (in *Injector) Arm(point Point, kind Kind, n uint64) *Injector {
	invariant.Checkf(validPoint(point), "resilience: arming unknown injection point %q (valid: %s)", point, pointNames())
	invariant.Checkf(validKind(kind), "resilience: arming unknown injection kind %q (valid: err, panic, corrupt)", kind)
	in.mu.Lock()
	defer in.mu.Unlock()
	in.arms[point] = &arm{kind: kind, at: n}
	return in
}

// ArmProb arms point to fail with kind on every hit independently with
// probability p, drawn from the injector's seeded stream. Unknown points
// and kinds fail loudly (see Arm).
func (in *Injector) ArmProb(point Point, kind Kind, p float64) *Injector {
	invariant.Checkf(validPoint(point), "resilience: arming unknown injection point %q (valid: %s)", point, pointNames())
	invariant.Checkf(validKind(kind), "resilience: arming unknown injection kind %q (valid: err, panic, corrupt)", kind)
	in.mu.Lock()
	defer in.mu.Unlock()
	in.arms[point] = &arm{kind: kind, prob: p}
	return in
}

// ParseInjector parses a comma-separated spec of the form
//
//	point:kind@N  — fire once, on the N-th hit (1-based)
//	point:kind~P  — fire on each hit with seeded probability P
//
// e.g. "sweep-worker:panic@3,checkpoint-io:corrupt@1". An empty spec yields
// a nil (disarmed) injector.
func ParseInjector(spec string, seed int64) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	in := NewInjector(seed)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		point, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("resilience: bad injection spec %q (want point:kind@N or point:kind~P)", part)
		}
		p := Point(point)
		if !validPoint(p) {
			return nil, fmt.Errorf("resilience: unknown injection point %q (valid: %s)", point, pointNames())
		}
		var kindStr, argStr string
		var probabilistic bool
		if k, a, ok := strings.Cut(rest, "@"); ok {
			kindStr, argStr = k, a
		} else if k, a, ok := strings.Cut(rest, "~"); ok {
			kindStr, argStr, probabilistic = k, a, true
		} else {
			return nil, fmt.Errorf("resilience: bad injection spec %q: missing @N or ~P", part)
		}
		kind := Kind(kindStr)
		if !validKind(kind) {
			return nil, fmt.Errorf("resilience: unknown injection kind %q (valid: err, panic, corrupt)", kindStr)
		}
		if probabilistic {
			prob, err := strconv.ParseFloat(argStr, 64)
			if err != nil || prob < 0 || prob > 1 {
				return nil, fmt.Errorf("resilience: bad injection probability %q in %q", argStr, part)
			}
			in.ArmProb(p, kind, prob)
		} else {
			n, err := strconv.ParseUint(argStr, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("resilience: bad injection hit count %q in %q (1-based)", argStr, part)
			}
			in.Arm(p, kind, n)
		}
	}
	return in, nil
}

func validKind(k Kind) bool {
	switch k {
	case KindErr, KindPanic, KindCorrupt:
		return true
	}
	return false
}

func validPoint(p Point) bool {
	for _, q := range Points() {
		if p == q {
			return true
		}
	}
	return false
}

func pointNames() string {
	var names []string
	for _, p := range Points() {
		names = append(names, string(p))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Fire records a hit at point and returns the armed fault when it triggers:
// an *InjectedError for KindErr and KindCorrupt (callers that understand
// corruption, like the checkpoint store, inspect the Kind), or a panic
// carrying the *InjectedError for KindPanic — the caller is expected to sit
// behind a Guard boundary. A nil injector or unarmed point returns nil.
func (in *Injector) Fire(point Point) error {
	if in == nil {
		return nil
	}
	a, hit, trigger := in.evalHit(point)
	if !trigger {
		return nil
	}
	ie := &InjectedError{Point: point, Kind: a.kind, Hit: hit}
	if a.kind == KindPanic {
		panic(ie) //mpgraph:allow panicpolicy -- fault injection: the armed panic exists to exercise recovery boundaries
	}
	return ie
}

// evalHit records the hit under the lock and decides whether the armed
// fault triggers. The deferred unlock keeps the counters consistent even
// if the probability draw panics; the panic/return paths of Fire itself
// stay outside the critical section.
func (in *Injector) evalHit(point Point) (a *arm, hit uint64, trigger bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	a = in.arms[point]
	if a == nil {
		return nil, 0, false
	}
	in.hits[point]++
	hit = in.hits[point]
	if a.at > 0 {
		trigger = hit == a.at
	} else {
		trigger = in.rng.Float64() < a.prob
	}
	if trigger {
		in.fired[point]++
	}
	return a, hit, trigger
}

// Hits reports how many times point has been reached.
func (in *Injector) Hits(point Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[point]
}

// Fired reports how many times point has actually injected a fault.
func (in *Injector) Fired(point Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}
