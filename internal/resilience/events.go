package resilience

import (
	"fmt"
	"io"
	"sync"
)

// Event is one degradation event: a recovered panic, a quarantined model, a
// corrupt checkpoint treated as a cache miss, an engaged fallback. Events
// deliberately carry a sequence number instead of a timestamp so a resumed
// run's event log is comparable across machines and replays.
type Event struct {
	// Seq is the 1-based order the event was recorded in.
	Seq int
	// Component names the degraded subsystem (e.g. "prefetch/mpgraph",
	// "checkpoint", "sweep-worker").
	Component string
	// Action classifies the event ("violation", "quarantine", "fallback",
	// "corrupt-checkpoint", "panic-recovered", ...).
	Action string
	// Detail is the human-readable cause.
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("[%04d] %-24s %-20s %s", e.Seq, e.Component, e.Action, e.Detail)
}

// Log is a thread-safe, append-only degradation event log. A nil *Log is
// valid and drops events, so instrumented components need no conditionals.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Add records an event and returns its sequence number (0 on a nil log).
func (l *Log) Add(component, action, detail string) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Event{Seq: len(l.events) + 1, Component: component, Action: action, Detail: detail}
	l.events = append(l.events, e)
	return e.Seq
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a snapshot copy of the log.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count returns how many events match the component and action filters
// (empty string matches anything).
func (l *Log) Count(component, action string) int {
	n := 0
	for _, e := range l.Events() {
		if (component == "" || e.Component == component) && (action == "" || e.Action == action) {
			n++
		}
	}
	return n
}

// WriteTo renders the log as text lines, implementing io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range l.Events() {
		n, err := fmt.Fprintln(w, e.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
