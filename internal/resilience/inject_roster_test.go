package resilience

import (
	"strings"
	"testing"
)

// TestUnknownPointErrorListsRoster pins the operator experience for a
// misspelled -inject flag: the error must name every declared point, sorted,
// so the fix is visible in the message itself rather than in the source.
func TestUnknownPointErrorListsRoster(t *testing.T) {
	_, err := ParseInjector("serve-sesion:panic@1", 1)
	if err == nil {
		t.Fatal("ParseInjector accepted a misspelled point")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown injection point "serve-sesion"`) {
		t.Errorf("error does not name the bad point: %q", msg)
	}
	for _, p := range Points() {
		if !strings.Contains(msg, string(p)) {
			t.Errorf("error does not list declared point %q: %q", p, msg)
		}
	}
	// Sorted listing: deterministic output for logs and tests.
	names := pointNames()
	if i := strings.Index(msg, names); i < 0 {
		t.Errorf("error does not embed the sorted roster %q: %q", names, msg)
	}
}

// TestArmPanicListsRoster pins the same property for the programmatic
// arming path, which fails through the invariant helper.
func TestArmPanicListsRoster(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Arm accepted a misspelled point")
		}
		msg, ok := r.(error)
		var text string
		if ok {
			text = msg.Error()
		} else {
			text = strings.TrimSpace(toString(r))
		}
		for _, p := range Points() {
			if !strings.Contains(text, string(p)) {
				t.Errorf("Arm panic does not list declared point %q: %q", p, text)
			}
		}
	}()
	NewInjector(1).Arm("serve-sesion", KindPanic, 1)
}

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if s, ok := v.(interface{ String() string }); ok {
		return s.String()
	}
	return ""
}
