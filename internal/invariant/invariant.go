// Package invariant holds the designated panic helpers that the
// panicpolicy analyzer (internal/analysis/passes/panicpolicy) allows.
// Library code must surface recoverable failures as typed errors; panics
// are reserved for provable programmer errors — shape mismatches, impossible
// states, broken preconditions that no caller input can legitimately
// produce. Funnelling those panics through this package keeps the
// "what may crash the process" surface small and greppable, and gives one
// place to hook crash telemetry later.
package invariant

import "fmt"

// Failf panics with a formatted invariant-violation message. Call it only
// when the condition is a programmer error, never for input validation.
//
// mpgraph:invariant
func Failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// Fail panics with msg.
//
// mpgraph:invariant
func Fail(msg string) {
	panic(msg)
}

// Check panics with msg unless cond holds.
//
// mpgraph:invariant
func Check(cond bool, msg string) {
	if !cond {
		panic(msg)
	}
}

// Checkf panics with a formatted message unless cond holds. The arguments
// are evaluated even when cond holds, so keep them cheap on hot paths (or
// guard with an explicit if + Failf).
//
// mpgraph:invariant
func Checkf(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf(format, args...))
	}
}

// OnErr panics if err is non-nil, for errors that are impossible by
// construction (e.g. encoding a value that was just decoded).
//
// mpgraph:invariant
func OnErr(err error) {
	if err != nil {
		panic(err)
	}
}
