package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpgraph/internal/resilience"
)

// TestChaosChurningSessions is the headline robustness drill: 220 sessions
// churn through a 64-slot table from 24 concurrent clients while all three
// serve injection points fire probabilistically against real AMMA
// prefetchers on the batched-inference tier. The server must classify every
// failure, keep majority availability, bound degradations by actual
// session-fault firings, drain cleanly, and leak no goroutines. Run with
// -race.
func TestChaosChurningSessions(t *testing.T) {
	const (
		nSessions  = 220
		nClients   = 24
		perSession = 96
	)
	baseline := runtime.NumGoroutine()

	cfg := ammaConfig(t, 8)
	cfg.MaxSessions = 64
	cfg.FlushEvery = 40
	inj := resilience.NewInjector(42)
	inj.ArmProb(resilience.PointServeAdmit, resilience.KindErr, 0.04)
	inj.ArmProb(resilience.PointServeSession, resilience.KindPanic, 0.004)
	inj.ArmProb(resilience.PointServeFlush, resilience.KindErr, 0.03)
	cfg.Injector = inj
	srv := mustServer(t, cfg)

	var (
		mu          sync.Mutex
		successes   int
		admitFaults int
		flushFaults int
	)
	ids := make(chan int, nSessions)
	for i := 0; i < nSessions; i++ {
		ids <- i
	}
	close(ids)
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ids {
				id := fmt.Sprintf("chaos-%d", i)
				events := sessionEvents(1000, i, perSession)
				err := srv.Feed(context.Background(), id, events, func(Prediction) error { return nil })
				var ae *AdmissionError
				var ie *resilience.InjectedError
				mu.Lock()
				switch {
				case err == nil:
					successes++
				case errors.As(err, &ae):
					admitFaults++
				case errors.As(err, &ie):
					flushFaults++
				default:
					t.Errorf("session %s: unclassified feed error %v", id, err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if successes < nSessions/2 {
		t.Fatalf("only %d/%d sessions succeeded under chaos; want a majority", successes, nSessions)
	}
	st := srv.Stats()
	t.Logf("chaos: successes=%d admitFaults=%d flushFaults=%d stats=%+v", successes, admitFaults, flushFaults, st)
	if st.PeakSessions > cfg.MaxSessions {
		t.Fatalf("peak sessions %d exceeded MaxSessions %d", st.PeakSessions, cfg.MaxSessions)
	}
	if st.Evicted == 0 {
		t.Fatalf("220 sessions through a 64-slot table must evict; stats = %+v", st)
	}
	if uint64(admitFaults) != st.AdmitFaults {
		t.Fatalf("admit faults: classified %d, counted %d", admitFaults, st.AdmitFaults)
	}
	// Quarantine needs MaxViolations (3) distinct firings, so degradations
	// are bounded by the injector's actual serve-session fire count.
	fired := inj.Fired(resilience.PointServeSession)
	if st.Degraded*3 > fired {
		t.Fatalf("%d degradations need >= %d session faults, injector fired %d", st.Degraded, st.Degraded*3, fired)
	}
	if fired == 0 && st.Degraded != 0 {
		t.Fatalf("degradations without any injected session fault: %+v", st)
	}

	// Availability after the storm: a fresh session must still be servable
	// (retrying past the still-armed 4% admission fault).
	served := false
	for attempt := 0; attempt < 10 && !served; attempt++ {
		preds := 0
		err := srv.Feed(context.Background(), "aftermath", sessionEvents(2000, attempt, 16),
			func(Prediction) error { preds++; return nil })
		if err == nil {
			if preds == 0 {
				t.Fatal("post-chaos feed succeeded with zero predictions")
			}
			served = true
		}
	}
	if !served {
		t.Fatal("server unavailable after chaos settled")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if st := srv.Stats(); st.ActiveSessions != 0 {
		t.Fatalf("sessions survived drain: %+v", st)
	}
	waitNoLeakedGoroutines(t, baseline)
}

// waitNoLeakedGoroutines polls the goroutine count back down to the
// pre-test baseline (plus slack for runtime helpers), dumping stacks on
// timeout so a leak names its culprit.
func waitNoLeakedGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, n, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
