package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
)

// replayTrace builds a JSONL trace of nSessions interleaved round-robin —
// the adversarial ordering for first-appearance bookkeeping — with each
// session's stream fixed by its identity alone.
func replayTrace(t *testing.T, nSessions, perSession int) []byte {
	t.Helper()
	streams := make([][]Event, nSessions)
	for i := range streams {
		streams[i] = sessionEvents(3000, i, perSession)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for j := 0; j < perSession; j++ {
		for i := 0; i < nSessions; i++ {
			ev := streams[i][j]
			rec := ReplayRecord{
				Session: fmt.Sprintf("r%d", i),
				Addr:    ev.Addr,
				PC:      ev.PC,
				Core:    ev.Core,
			}
			if err := enc.Encode(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

func runReplay(t *testing.T, trace []byte, batch, parallel int) []byte {
	t.Helper()
	srv := mustServer(t, ammaConfig(t, batch))
	var out bytes.Buffer
	if err := Replay(context.Background(), srv, bytes.NewReader(trace), &out, parallel); err != nil {
		t.Fatalf("Replay(batch=%d, parallel=%d) = %v", batch, parallel, err)
	}
	ctx, cancel := contextWithTestTimeout()
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after replay = %v", err)
	}
	return out.Bytes()
}

// TestReplayByteIdentical pins the acceptance contract: the prediction log
// of a replayed trace is byte-identical across worker parallelism and batch
// size. Batched kernels are composition-independent (PR 7), so regrouping
// sessions into different inference batches — or running them on one worker
// versus four — must not move a single bit of any prediction.
func TestReplayByteIdentical(t *testing.T) {
	trace := replayTrace(t, 6, 80)

	var ref []byte
	for _, batch := range []int{1, 8} {
		for _, parallel := range []int{1, 4} {
			got := runReplay(t, trace, batch, parallel)
			if len(got) == 0 {
				t.Fatalf("batch=%d parallel=%d produced an empty log", batch, parallel)
			}
			if ref == nil {
				ref = got
				continue
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("batch=%d parallel=%d prediction log diverges from reference", batch, parallel)
			}
		}
	}

	// The unbatched fast path has its own identity class across parallelism.
	direct := runReplay(t, trace, 0, 1)
	if got := runReplay(t, trace, 0, 4); !bytes.Equal(direct, got) {
		t.Fatal("unbatched replay diverges across parallelism")
	}

	// The reference log is well-formed: every session's predictions appear
	// in first-appearance order with strictly increasing sequence numbers
	// (warmup events and deadline-suppressed accesses emit nothing, so the
	// numbering may skip but never reorder).
	dec := json.NewDecoder(bytes.NewReader(ref))
	var (
		order []string
		seen  = map[string]uint64{}
	)
	for {
		var p Prediction
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("replay log is not valid JSONL: %v", err)
		}
		if seen[p.Session] == 0 {
			order = append(order, p.Session)
		}
		if p.Seq <= seen[p.Session] {
			t.Fatalf("session %s: seq %d after %d", p.Session, p.Seq, seen[p.Session])
		}
		seen[p.Session] = p.Seq
	}
	if len(order) != 6 {
		t.Fatalf("log covers %d sessions, want 6", len(order))
	}
	if want := "r0 r1 r2 r3 r4 r5"; strings.Join(order, " ") != want {
		t.Fatalf("session order = %v, want first-appearance order", order)
	}
}
