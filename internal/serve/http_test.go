package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postEvents POSTs a JSONL-encoded event stream for a session.
func postEvents(t *testing.T, base, id string, events []Event) *http.Response {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(base+"/v1/sessions/"+id+"/events", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, r io.Reader) []Prediction {
	t.Helper()
	dec := json.NewDecoder(r)
	var out []Prediction
	for {
		var p Prediction
		if err := dec.Decode(&p); err == io.EOF {
			return out
		} else if err != nil {
			t.Fatalf("decoding prediction stream: %v", err)
		}
		out = append(out, p)
	}
}

// TestHTTPFeedStream: a feed round-trips as a streamed JSONL response with
// the documented content type and ordered sequence numbers.
func TestHTTPFeedStream(t *testing.T) {
	srv := mustServer(t, stubConfig(echoPF))
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()

	resp := postEvents(t, ts.URL, "web-1", evs(5))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	preds := decodeBody(t, resp.Body)
	if len(preds) != 5 {
		t.Fatalf("got %d predictions, want 5", len(preds))
	}
	for i, p := range preds {
		if p.Session != "web-1" || p.Seq != uint64(i+1) {
			t.Fatalf("prediction %d = %+v", i, p)
		}
	}
}

// TestHTTPSaturation: with the table full of busy sessions a new session
// gets 429 plus the Retry-After backoff hint.
func TestHTTPSaturation(t *testing.T) {
	h := newBlockingHarness()
	cfg := stubConfig(h.primary("hog"))
	cfg.MaxSessions = 1
	cfg.RetryAfter = 7
	srv := mustServer(t, cfg)
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postEvents(t, ts.URL, "hog", evs(2))
		io.Copy(io.Discard, resp.Body) //mpgraph:allow errdrop -- draining a test response
		resp.Body.Close()
	}()
	<-h.started

	resp := postEvents(t, ts.URL, "late", evs(1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want 7", ra)
	}
	// A concurrent feed to the busy session conflicts.
	resp2 := postEvents(t, ts.URL, "hog", evs(1))
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("busy-session status = %d, want 409", resp2.StatusCode)
	}
	close(h.release)
	<-done
}

// TestHTTPCloseAndStats: DELETE lifecycle plus the stats and health probes.
func TestHTTPCloseAndStats(t *testing.T) {
	srv := mustServer(t, stubConfig(echoPF))
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()

	resp := postEvents(t, ts.URL, "s", evs(2))
	io.Copy(io.Discard, resp.Body) //mpgraph:allow errdrop -- draining a test response
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/s", nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", del.StatusCode)
	}
	del2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del2.Body.Close()
	if del2.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", del2.StatusCode)
	}

	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats Stats
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admitted != 1 || stats.Closed != 1 || stats.Events != 2 {
		t.Fatalf("stats = %+v", stats)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	body, _ := io.ReadAll(hz.Body)
	if hz.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q", hz.StatusCode, body)
	}
}

// TestHTTPBadInput: malformed event streams and oversized feeds are 400s.
func TestHTTPBadInput(t *testing.T) {
	cfg := stubConfig(echoPF)
	cfg.MaxEventsPerFeed = 4
	srv := mustServer(t, cfg)
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sessions/s/events", "application/x-ndjson",
		strings.NewReader(`{"addr": "not a number"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}

	over := postEvents(t, ts.URL, "s", evs(5))
	over.Body.Close()
	if over.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized feed = %d, want 400", over.StatusCode)
	}
}

// TestHTTPDrainingRejects: after Shutdown begins, feeds get 503 with a
// Retry-After hint (load balancers treat it as a backend rotation signal).
func TestHTTPDrainingRejects(t *testing.T) {
	h := newBlockingHarness()
	cfg := stubConfig(h.primary("s"))
	srv := mustServer(t, cfg)
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postEvents(t, ts.URL, "s", evs(2))
		io.Copy(io.Discard, resp.Body) //mpgraph:allow errdrop -- draining a test response
		resp.Body.Close()
	}()
	<-h.started
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := contextWithTestTimeout()
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	waitForDraining(t, srv)

	resp := postEvents(t, ts.URL, "other", evs(1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining rejection must carry Retry-After")
	}
	close(h.release)
	<-done
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}

func contextWithTestTimeout() (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}
