// Package serve is the long-running prefetch inference service (DESIGN.md
// §12): clients stream (addr, PC, core) demand events into named sessions
// and receive prefetch-candidate streams back. Where the experiments runner
// is batch — train, sweep, exit — this package is the "millions of users"
// backbone the ROADMAP names: a daemon whose robustness properties are the
// product.
//
// The robustness spine:
//
//   - Admission control: the session table is bounded at Config.MaxSessions.
//     A new session either evicts the least-recently-used idle session or is
//     rejected with ErrSaturated, which the HTTP layer maps to 429 plus a
//     Retry-After backoff hint. State is bounded by construction: each
//     session's CSTP history and PBOT live in fixed-size ring buffers and
//     tables inside its prefetcher.
//   - Per-session degradation: every session's primary prefetcher sits
//     behind prefetch.Guarded with a warm BO fallback, so a poisoned model,
//     a recovered panic, or an out-of-range prediction benches one session —
//     never the daemon. The serve-session fault point fires inside that
//     boundary; serve-admit and serve-flush fire at the admission and
//     stream-flush boundaries, each contained to one request.
//   - Deadline propagation: a feed's context is checked between events and
//     threaded through the core.ModelScheduler seam (ctxSched), so an
//     expired request degrades in-flight model calls to empty predictions
//     instead of blocking in the batch tier.
//   - Graceful drain: Shutdown stops admissions, waits for in-flight feeds
//     (each of which holds its batch-scheduler membership only while
//     actively submitting — the chunked flush protocol in session.go), and
//     closes every session. No timers, no leaked goroutines.
//
// The package is transport-agnostic: Server is driven directly by tests and
// the replay mode, and NewHandler (http.go) exposes it over HTTP/JSONL.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpgraph/internal/core"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
)

// Event is one demand access streamed by a client: the byte address, the
// program counter of the access, and the issuing core.
type Event struct {
	Addr uint64 `json:"addr"`
	PC   uint64 `json:"pc"`
	Core uint8  `json:"core"`
}

// Prediction is one prefetch-candidate record streamed back to the client.
// Seq is the 1-based index of the triggering event within the session's
// lifetime (it keeps counting across feeds), Blocks the predicted
// cache-block addresses.
type Prediction struct {
	Session string   `json:"session"`
	Seq     uint64   `json:"seq"`
	Blocks  []uint64 `json:"prefetch"`
}

// The admission and lifecycle errors the transport layers map to statuses.
var (
	// ErrSaturated rejects a new session while the table is full of busy
	// sessions (HTTP 429 + Retry-After).
	ErrSaturated = errors.New("serve: session table saturated")
	// ErrDraining rejects any feed after Shutdown began (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
	// ErrSessionBusy rejects a feed for a session already serving one
	// (HTTP 409): a session is a single ordered event stream.
	ErrSessionBusy = errors.New("serve: session busy")
)

// AdmissionError wraps an injected or internal failure of the admission
// step itself (HTTP 503): the session was never created.
type AdmissionError struct{ Cause error }

// Error implements error.
func (e *AdmissionError) Error() string { return "serve: admission failed: " + e.Cause.Error() }

// Unwrap exposes the cause.
func (e *AdmissionError) Unwrap() error { return e.Cause }

// Config assembles a Server.
type Config struct {
	// MaxSessions bounds the session table (default 256). Admission beyond
	// it evicts the LRU idle session or fails with ErrSaturated.
	MaxSessions int
	// FlushEvery is the streamed-chunk size in events (default 64). A feed
	// joins the batch-inference tier only while processing a chunk and
	// leaves before emitting it, so a slow client write never stalls other
	// sessions' fused inference rounds.
	FlushEvery int
	// RetryAfter is the backoff hint, in seconds, attached to saturation
	// and drain rejections (default 1).
	RetryAfter int
	// RequestTimeout bounds one feed request (applied by the HTTP layer;
	// default 30s). The deadline propagates through the session's model
	// calls via the core.ModelScheduler seam.
	RequestTimeout time.Duration
	// MaxEventsPerFeed bounds one feed's event batch (default 65536).
	MaxEventsPerFeed int
	// Guard tunes the per-session degradation ladder (see
	// prefetch.GuardConfig; zero value = defaults).
	Guard prefetch.GuardConfig
	// NewPrimary builds one session's primary prefetcher. sched is the
	// session's handle into the batched-inference tier (nil when batching
	// is off) and must be installed as the prefetcher's model scheduler so
	// request deadlines propagate into model calls.
	NewPrimary func(sched core.ModelScheduler) (sim.Prefetcher, error)
	// NewModelSession returns a fresh handle into a shared batched-
	// inference scheduler, or nil to run sessions unbatched (e.g.
	// experiments.Runner.NewModelSession).
	NewModelSession func() core.ModelScheduler
	// NewFallback builds one session's warm fallback (default: BO at its
	// reference configuration).
	NewFallback func() sim.Prefetcher
	// Injector arms the serve-admit / serve-session / serve-flush fault
	// points (nil = disarmed).
	Injector *resilience.Injector
	// Events receives degradation events (nil = dropped).
	Events *resilience.Log
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxEventsPerFeed <= 0 {
		c.MaxEventsPerFeed = 1 << 16
	}
	if c.NewFallback == nil {
		c.NewFallback = func() sim.Prefetcher { return prefetch.NewBO(prefetch.DefaultBOConfig()) }
	}
	return c
}

// Stats is a snapshot of the server counters.
type Stats struct {
	// ActiveSessions is the current session-table population;
	// PeakSessions its high-water mark (always <= MaxSessions).
	ActiveSessions int    `json:"active_sessions"`
	PeakSessions   int    `json:"peak_sessions"`
	Admitted       uint64 `json:"admitted"`
	Rejected       uint64 `json:"rejected"`
	Evicted        uint64 `json:"evicted"`
	Closed         uint64 `json:"closed"`
	AdmitFaults    uint64 `json:"admit_faults"`
	Feeds          uint64 `json:"feeds"`
	FeedErrors     uint64 `json:"feed_errors"`
	Events         uint64 `json:"events"`
	Predictions    uint64 `json:"predictions"`
	Degraded       uint64 `json:"degraded_sessions"`
	Draining       bool   `json:"draining"`
}

// Server is the session-table core of the daemon. It is safe for concurrent
// use; one session serves at most one feed at a time.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	clock    uint64 // logical LRU clock: bumped on every acquire/release
	draining bool
	peak     int

	// wg counts in-flight feeds; Shutdown joins it.
	wg sync.WaitGroup

	admitted, rejected, evicted, closed atomic.Uint64
	admitFaults, feeds, feedErrors      atomic.Uint64
	events, predictions, degraded       atomic.Uint64
}

// New builds a Server. Config.NewPrimary is required.
func New(cfg Config) (*Server, error) {
	if cfg.NewPrimary == nil {
		return nil, fmt.Errorf("serve: Config.NewPrimary is required")
	}
	return &Server{cfg: cfg.withDefaults(), sessions: map[string]*session{}}, nil
}

// Config returns the resolved (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active, peak, draining := len(s.sessions), s.peak, s.draining
	s.mu.Unlock()
	return Stats{
		ActiveSessions: active,
		PeakSessions:   peak,
		Admitted:       s.admitted.Load(),
		Rejected:       s.rejected.Load(),
		Evicted:        s.evicted.Load(),
		Closed:         s.closed.Load(),
		AdmitFaults:    s.admitFaults.Load(),
		Feeds:          s.feeds.Load(),
		FeedErrors:     s.feedErrors.Load(),
		Events:         s.events.Load(),
		Predictions:    s.predictions.Load(),
		Degraded:       s.degraded.Load(),
		Draining:       draining,
	}
}

// Feed streams one batch of events into session id, creating it under
// admission control if absent, and emits every non-empty prediction through
// emit in event order. The whole feed runs inside a resilience boundary:
// a panic anywhere (injected or real) fails this request, logs a
// degradation event, and leaves the daemon serving.
func (s *Server) Feed(ctx context.Context, id string, events []Event, emit func(Prediction) error) error {
	if len(events) > s.cfg.MaxEventsPerFeed {
		return fmt.Errorf("serve: feed of %d events exceeds the %d-event bound", len(events), s.cfg.MaxEventsPerFeed)
	}
	sess, err := s.acquire(id)
	if err != nil {
		return err
	}
	defer s.release(sess)
	s.feeds.Add(1)
	err = resilience.Guard("serve/session/"+id, func() error {
		return sess.process(ctx, events, emit)
	})
	if err != nil {
		s.feedErrors.Add(1)
		s.cfg.Events.Add("serve/session/"+id, "request-failed", err.Error())
	}
	return err
}

// Close removes session id. A busy session is doomed instead: it finishes
// its in-flight feed and is then removed. Reports whether the id existed.
func (s *Server) Close(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		if sess.busy {
			sess.doomed = true
		} else {
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	if ok {
		s.closed.Add(1)
		s.cfg.Events.Add("serve/session/"+id, "closed", "client close")
	}
	return ok
}

// Shutdown drains the server: new feeds are rejected with ErrDraining,
// in-flight feeds run to completion (each leaves the batch tier before its
// final flush, so the drain cannot deadlock on a fused inference round),
// and every session is then closed. Returns ctx.Err() if the context
// expires first; the drain keeps progressing regardless, so a later call
// can complete it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { //mpgraph:detached -- outlives an expired Shutdown deadline by design; a later Shutdown call rejoins the drain via done
		defer close(done)
		if err := resilience.Guard("serve.shutdown-wait", s.waitFeeds); err != nil {
			s.cfg.Events.Add("serve/shutdown", "panic-recovered", err.Error())
		}
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	s.mu.Lock()
	n := len(s.sessions)
	for id := range s.sessions {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	s.closed.Add(uint64(n))
	s.cfg.Events.Add("serve/shutdown", "drained", fmt.Sprintf("%d sessions closed", n))
	return nil
}

// waitFeeds joins the in-flight feed WaitGroup (a named method so the
// shutdown goroutine has a boundary-wrapped body).
func (s *Server) waitFeeds() error {
	s.wg.Wait()
	return nil
}

// acquire resolves id to a busy-marked session, admitting (and possibly
// evicting) under the table lock. Injector firing, session construction,
// and event logging all happen outside the lock.
func (s *Server) acquire(id string) (*session, error) {
	sess, err := s.claim(id, nil)
	if err != nil || sess != nil {
		return sess, err
	}

	// Admission: the serve-admit point fires outside the table lock and
	// inside its own recovery boundary, so an injected panic surfaces as a
	// per-request admission failure.
	if err := resilience.Guard("serve.admit", func() error {
		return s.cfg.Injector.Fire(resilience.PointServeAdmit)
	}); err != nil {
		s.admitFaults.Add(1)
		s.cfg.Events.Add("serve/admit", "injected-fault", err.Error())
		return nil, &AdmissionError{Cause: err}
	}
	fresh, err := s.newSession(id)
	if err != nil {
		return nil, err
	}
	return s.claim(id, fresh)
}

// claim is the locked half of acquire. With fresh == nil it only resolves
// an existing session (nil, nil means "absent: build one and call again").
// With fresh != nil it installs it, evicting the LRU idle session when the
// table is full; a concurrent creator of the same id wins and fresh is
// discarded in favour of the existing session.
func (s *Server) claim(id string, fresh *session) (*session, error) {
	sess, evictedID, installed, err := s.claimLocked(id, fresh)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			s.rejected.Add(1)
		}
		return nil, err
	}
	if installed {
		s.admitted.Add(1)
		if evictedID != "" {
			s.evicted.Add(1)
			s.cfg.Events.Add("serve/session/"+evictedID, "evicted", "LRU idle eviction for "+id)
		}
	}
	return sess, nil
}

// claimLocked is the critical section of claim; counters and event logging
// stay outside so nothing observable happens under the table lock.
func (s *Server) claimLocked(id string, fresh *session) (sess *session, evictedID string, installed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, "", false, ErrDraining
	}
	if existing := s.sessions[id]; existing != nil {
		if existing.busy {
			return nil, "", false, ErrSessionBusy
		}
		s.markBusyLocked(existing)
		return existing, "", false, nil
	}
	if fresh == nil {
		return nil, "", false, nil
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		victim := s.lruIdleLocked()
		if victim == nil {
			return nil, "", false, ErrSaturated
		}
		delete(s.sessions, victim.id)
		evictedID = victim.id
	}
	s.sessions[id] = fresh
	if len(s.sessions) > s.peak {
		s.peak = len(s.sessions)
	}
	s.markBusyLocked(fresh)
	return fresh, evictedID, true, nil
}

// markBusyLocked transitions a session to busy and registers the feed with
// the drain WaitGroup. Caller holds s.mu.
func (s *Server) markBusyLocked(sess *session) {
	sess.busy = true
	s.clock++
	sess.lastUse = s.clock
	s.wg.Add(1)
}

// lruIdleLocked returns the idle session with the oldest lastUse, or nil
// when every session is busy. Caller holds s.mu. The logical clock is
// strictly monotonic, so the minimum is unique and the map's iteration
// order cannot influence the choice.
func (s *Server) lruIdleLocked() *session {
	var victim *session
	for _, sess := range s.sessions {
		if sess.busy {
			continue
		}
		if victim == nil || sess.lastUse < victim.lastUse {
			victim = sess
		}
	}
	return victim
}

// release returns a session to idle (or removes it, if doomed by a
// concurrent Close) and signals the drain WaitGroup.
func (s *Server) release(sess *session) {
	s.mu.Lock()
	sess.busy = false
	s.clock++
	sess.lastUse = s.clock
	if sess.doomed {
		delete(s.sessions, sess.id)
	}
	s.mu.Unlock()
	s.wg.Done()
}
