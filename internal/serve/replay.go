package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"mpgraph/internal/resilience"
)

// ReplayRecord is one line of a replay trace: a demand access tagged with
// the session it belongs to.
type ReplayRecord struct {
	Session string `json:"session"`
	Addr    uint64 `json:"addr"`
	PC      uint64 `json:"pc"`
	Core    uint8  `json:"core"`
}

// Replay feeds a JSONL trace of ReplayRecords through srv and writes the
// resulting prediction log as JSONL to out. The log is byte-identical for
// any parallelism, batch size, and scheduler interleaving, extending the
// sweep's determinism contract to the serving path:
//
//   - each session's full event stream runs as one Feed, so its predictions
//     are a pure function of its own stream (the batched kernels are
//     composition-independent, and a busy session can never be evicted
//     mid-stream);
//   - the log is assembled after the fact: sessions in first-appearance
//     order, each session's predictions in sequence order.
//
// parallel bounds concurrently-fed sessions (0 = min(sessions,
// MaxSessions); higher values are clamped to MaxSessions so admission can
// never reject: at most MaxSessions sessions are busy or freshly idle at
// once, and finished sessions are evictable). An injector armed on the
// serve points makes replay non-deterministic, as injected faults suppress
// predictions; deterministic replay is for fault-free verification runs.
func Replay(ctx context.Context, srv *Server, in io.Reader, out io.Writer, parallel int) error {
	order, streams, err := loadReplay(in, srv.cfg.MaxEventsPerFeed)
	if err != nil {
		return err
	}
	if parallel <= 0 || parallel > srv.cfg.MaxSessions {
		parallel = srv.cfg.MaxSessions
	}
	if parallel > len(order) {
		parallel = len(order)
	}

	outs := make([][]Prediction, len(order))
	errs := make([]error, len(order))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, id := range order {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = resilience.Guard("serve.replay/"+id, func() error {
				return srv.Feed(ctx, id, streams[id], func(p Prediction) error {
					outs[i] = append(outs[i], p)
					return nil
				})
			})
		}(i, id)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("serve: replaying session %q: %w", order[i], err)
		}
	}
	enc := json.NewEncoder(out)
	for _, preds := range outs {
		for _, p := range preds {
			if err := enc.Encode(p); err != nil {
				return fmt.Errorf("serve: writing replay log: %w", err)
			}
		}
	}
	return nil
}

// loadReplay decodes the trace, grouping events per session while
// preserving the sessions' first-appearance order and each session's event
// order.
func loadReplay(in io.Reader, perSessionLimit int) (order []string, streams map[string][]Event, err error) {
	dec := json.NewDecoder(in)
	streams = map[string][]Event{}
	n := 0
	for {
		var rec ReplayRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("serve: bad replay record at index %d: %w", n, err)
		}
		n++
		if rec.Session == "" {
			return nil, nil, fmt.Errorf("serve: replay record %d has no session", n-1)
		}
		if _, seen := streams[rec.Session]; !seen {
			order = append(order, rec.Session)
		}
		streams[rec.Session] = append(streams[rec.Session], Event{Addr: rec.Addr, PC: rec.PC, Core: rec.Core})
		if len(streams[rec.Session]) > perSessionLimit {
			return nil, nil, fmt.Errorf("serve: session %q exceeds the %d-event replay bound (raise -max-feed-events)", rec.Session, perSessionLimit)
		}
	}
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("serve: empty replay trace")
	}
	return order, streams, nil
}
