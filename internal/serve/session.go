package serve

import (
	"context"
	"fmt"

	"mpgraph/internal/core"
	"mpgraph/internal/models"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
	"mpgraph/internal/trace"
)

// session is one client's prefetch stream. All mutable state below the
// Server-owned lifecycle fields (busy/doomed/lastUse, guarded by Server.mu)
// is touched only by the single feed a session serves at a time, so the
// prediction path itself is lock-free.
type session struct {
	id  string
	srv *Server

	// Lifecycle, guarded by srv.mu.
	busy    bool
	doomed  bool
	lastUse uint64

	// guard is the degradation ladder: injectedPrimary (fault point) →
	// primary prefetcher, with the warm fallback underneath. Its CSTP
	// history and PBOT state are the fixed rings inside the primary.
	guard *prefetch.Guarded
	// csched is the session's deadline-aware handle into the batched
	// inference tier (nil when batching is off).
	csched *ctxSched
	// seq counts the session's lifetime events (1-based in predictions).
	seq uint64
	// preds buffers one chunk's predictions so network writes happen only
	// after the session has left the batch tier.
	preds []Prediction
	// degradedCounted latches the Stats.Degraded increment.
	degradedCounted bool
}

// newSession assembles a session's prefetcher chain.
func (s *Server) newSession(id string) (*session, error) {
	var sched core.ModelScheduler
	var cs *ctxSched
	if s.cfg.NewModelSession != nil {
		if inner := s.cfg.NewModelSession(); inner != nil {
			cs = &ctxSched{inner: inner}
			sched = cs
		}
	}
	primary, err := s.cfg.NewPrimary(sched)
	if err != nil {
		return nil, fmt.Errorf("serve: building session %q: %w", id, err)
	}
	ip := &injectedPrimary{inner: primary, inj: s.cfg.Injector}
	guard := prefetch.NewGuarded(ip, s.cfg.NewFallback(), s.cfg.Guard, s.cfg.Events)
	return &session{id: id, srv: s, guard: guard, csched: cs}, nil
}

// process runs one feed: events stream through the prefetcher in
// FlushEvery-sized chunks. The session holds its batch-tier membership only
// while computing a chunk and leaves before the serve-flush fault point and
// the client emits — so a slow or dead client (or an injected flush fault)
// can never stall another session's fused inference round, and a drain
// never waits on a network write.
func (sess *session) process(ctx context.Context, events []Event, emit func(Prediction) error) error {
	srv := sess.srv
	every := srv.cfg.FlushEvery
	for start := 0; start < len(events); start += every {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + every
		if end > len(events) {
			end = len(events)
		}
		sess.runChunk(ctx, events[start:end])
		if err := srv.cfg.Injector.Fire(resilience.PointServeFlush); err != nil {
			return fmt.Errorf("serve: flush fault: %w", err)
		}
		for _, p := range sess.preds {
			if err := emit(p); err != nil {
				return fmt.Errorf("serve: emitting prediction: %w", err)
			}
		}
		srv.predictions.Add(uint64(len(sess.preds)))
	}
	return nil
}

// runChunk feeds one chunk of events through the prefetcher inside a
// join/leave window of the batch tier, buffering predictions in sess.preds.
// Deadline expiry mid-chunk does not abort the chunk: the ctxSched
// short-circuits the remaining model calls to empty predictions, the chunk
// finishes fast, and the session leaves the tier — which is exactly the
// liveness obligation a joined session owes the flush watermark.
func (sess *session) runChunk(ctx context.Context, chunk []Event) {
	sess.preds = sess.preds[:0]
	sess.csched.bind(ctx)
	sess.guard.JoinBatch()
	for _, ev := range chunk {
		sess.seq++
		blocks := sess.guard.Operate(sim.LLCAccess{Block: trace.Block(ev.Addr), PC: ev.PC, Core: ev.Core})
		if len(blocks) > 0 {
			sess.preds = append(sess.preds, Prediction{
				Session: sess.id,
				Seq:     sess.seq,
				Blocks:  append([]uint64(nil), blocks...),
			})
		}
	}
	sess.guard.LeaveBatch()
	sess.csched.unbind()
	sess.srv.events.Add(uint64(len(chunk)))
	if sess.guard.Quarantined() && !sess.degradedCounted {
		sess.degradedCounted = true
		sess.srv.degraded.Add(1)
	}
}

// ctxSched threads a feed's deadline through the core.ModelScheduler seam:
// once the bound context expires, model calls stop submitting to the batch
// tier and yield empty results, which models.AppendDeltaTargets decodes to
// zero candidates. The session stays joined until its chunk ends, and a
// non-submitting expired session finishes its chunk without blocking, so
// the watermark's liveness contract holds. bind is called only by the
// session's single in-flight feed, never concurrently with a model call.
type ctxSched struct {
	inner core.ModelScheduler
	ctx   context.Context
}

// bind attaches the current feed's context. Nil-safe: a nil ctxSched means
// batching is off.
func (c *ctxSched) bind(ctx context.Context) {
	if c != nil {
		c.ctx = ctx
	}
}

// unbind detaches the context once the chunk's model calls are done.
func (c *ctxSched) unbind() {
	if c != nil {
		c.ctx = nil
	}
}

func (c *ctxSched) expired() bool { return c.ctx != nil && c.ctx.Err() != nil }

// Join implements core.ModelScheduler.
func (c *ctxSched) Join() { c.inner.Join() }

// Leave implements core.ModelScheduler.
func (c *ctxSched) Leave() { c.inner.Leave() }

// DeltaScores implements core.ModelScheduler; past the deadline it returns
// nil scores, which decode to zero prefetch candidates.
func (c *ctxSched) DeltaScores(m models.DeltaModel, s *models.Sample) []float64 {
	if c.expired() {
		return nil
	}
	return c.inner.DeltaScores(m, s)
}

// TopPages implements core.ModelScheduler; past the deadline it returns dst
// unchanged (no candidates appended).
func (c *ctxSched) TopPages(m models.PageModel, s *models.Sample, k int, dst []uint64) []uint64 {
	if c.expired() {
		return dst
	}
	return c.inner.TopPages(m, s, k, dst)
}

// injectedPrimary interposes the serve-session fault point between the
// Guarded boundary and the session's primary prefetcher, so injected faults
// exercise the same degradation ladder real defects do: an injected panic
// surfaces as a panic-recovered violation, an injected error latches into
// Health and surfaces as a model-health violation on the same access. Each
// firing costs exactly one violation (the latch clears once read), matching
// the per-defect accounting of organic failures.
type injectedPrimary struct {
	inner sim.Prefetcher
	inj   *resilience.Injector
	fault error
}

// Name implements sim.Prefetcher.
func (p *injectedPrimary) Name() string { return p.inner.Name() }

// Operate implements sim.Prefetcher. An injected panic propagates to the
// Guarded recovery boundary; an injected error suppresses this access's
// prediction and is reported through Health.
func (p *injectedPrimary) Operate(acc sim.LLCAccess) []uint64 {
	if err := p.inj.Fire(resilience.PointServeSession); err != nil {
		p.fault = err
		return nil
	}
	return p.inner.Operate(acc)
}

// Health implements sim.HealthReporter: the latched injected fault first,
// then the inner prefetcher's own self-screening.
func (p *injectedPrimary) Health() error {
	if p.fault != nil {
		err := p.fault
		p.fault = nil
		return err
	}
	if hr, ok := p.inner.(sim.HealthReporter); ok {
		return hr.Health()
	}
	return nil
}

// InferenceLatencyCycles implements sim.InferenceLatency by delegation.
func (p *injectedPrimary) InferenceLatencyCycles() uint64 {
	if il, ok := p.inner.(sim.InferenceLatency); ok {
		return il.InferenceLatencyCycles()
	}
	return 0
}

// JoinBatch forwards batch-tier registration to the inner prefetcher (the
// Guarded wrapper reaches the primary through this chain).
func (p *injectedPrimary) JoinBatch() {
	if j, ok := p.inner.(interface{ JoinBatch() }); ok {
		j.JoinBatch()
	}
}

// LeaveBatch forwards batch-tier deregistration to the inner prefetcher.
func (p *injectedPrimary) LeaveBatch() {
	if l, ok := p.inner.(interface{ LeaveBatch() }); ok {
		l.LeaveBatch()
	}
}
