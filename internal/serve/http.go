package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// NewHandler exposes srv over HTTP (Go 1.22 pattern routing):
//
//	POST   /v1/sessions/{id}/events  — body: JSONL of Event; response: a
//	        JSONL stream of Prediction, flushed at every chunk boundary.
//	DELETE /v1/sessions/{id}         — close the session (204 / 404).
//	GET    /v1/stats                 — server counters as JSON.
//	GET    /healthz                  — liveness probe ("ok").
//
// Status mapping: 429 + Retry-After when the session table is saturated,
// 503 + Retry-After while draining or when admission itself faulted, 409
// when the session is already serving a feed, 400 on malformed input.
// Every feed runs under Config.RequestTimeout; the deadline propagates
// through the session's model calls, so a timed-out request yields a
// truncated (but well-formed) prediction stream and a trailing error line.
func NewHandler(srv *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions/{id}/events", srv.handleFeed)
	mux.HandleFunc("DELETE /v1/sessions/{id}", srv.handleClose)
	mux.HandleFunc("GET /v1/stats", srv.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleFeed decodes the request's event stream and streams predictions
// back as JSONL.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		http.Error(w, "serve: empty session id", http.StatusBadRequest)
		return
	}
	events, err := decodeEvents(r.Body, s.cfg.MaxEventsPerFeed)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	streaming := false
	feedErr := s.Feed(ctx, id, events, func(p Prediction) error {
		if !streaming {
			// First prediction commits the 200 streaming response.
			w.Header().Set("Content-Type", "application/x-ndjson")
			streaming = true
		}
		if err := enc.Encode(p); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if feedErr == nil {
		if !streaming {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		return
	}
	if streaming {
		// Headers are gone; append a well-formed trailer line so the client
		// can distinguish truncation from completion.
		enc.Encode(map[string]string{"error": feedErr.Error()}) //mpgraph:allow errdrop -- best-effort trailer on an already-failed stream; the connection may be gone
		return
	}
	status, retry := statusFor(feedErr)
	if retry {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
	}
	http.Error(w, feedErr.Error(), status)
}

// handleClose removes a session.
func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if s.Close(r.PathValue("id")) {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	http.Error(w, "serve: unknown session", http.StatusNotFound)
}

// handleStats reports the server counters.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats()) //mpgraph:allow errdrop -- an encode failure here means the client hung up; nothing to report to
}

// statusFor maps feed errors to HTTP statuses and whether a Retry-After
// hint applies.
func statusFor(err error) (status int, retryable bool) {
	var admit *AdmissionError
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests, true
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, true
	case errors.Is(err, ErrSessionBusy):
		return http.StatusConflict, false
	case errors.As(err, &admit):
		return http.StatusServiceUnavailable, true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, false
	}
	return http.StatusInternalServerError, false
}

// decodeEvents reads a JSONL (or whitespace-separated JSON) stream of
// Events, enforcing the per-feed bound.
func decodeEvents(r io.Reader, limit int) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("serve: bad event at index %d: %w", len(events), err)
		}
		events = append(events, ev)
		if len(events) > limit {
			return nil, fmt.Errorf("serve: feed exceeds the %d-event bound", limit)
		}
	}
}
