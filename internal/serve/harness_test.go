package serve

import (
	"math/rand"
	"testing"

	"mpgraph/internal/core"
	"mpgraph/internal/models"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
)

// ammaConfig builds a server config whose sessions run real (untrained)
// AMMA MPGraph prefetchers over shared models — the production shape (the
// experiments Runner shares one trained suite across every session) at
// test cost: weight values are irrelevant to the robustness and
// determinism contracts, but the inference kernels, per-session CSTP/PBOT
// state, phase detector, and batched-inference tier are all real. batch>0
// attaches a shared BatchScheduler, exercised through the per-chunk
// join/leave protocol.
func ammaConfig(tb testing.TB, batch int) Config {
	tb.Helper()
	cfg := models.SmallConfig()
	var pcVals, pageVals []uint64
	for i := 0; i < 32; i++ {
		pcVals = append(pcVals, 0x400000+0x40*uint64(i))
		pageVals = append(pageVals, uint64(1<<14+i))
	}
	pcs := models.BuildVocab(pcVals, cfg.PCVocab)
	pages := models.BuildVocab(pageVals, cfg.PageVocab)
	const phases = 2
	psd := models.NewPhaseSpecificDelta(cfg, pcs, phases, 11)
	psp := models.NewPhaseSpecificPage(cfg, pages, pcs, phases, 12)
	var sched *prefetch.BatchScheduler
	if batch > 0 {
		sched = prefetch.NewBatchScheduler(batch)
	}
	return Config{
		NewPrimary: func(ms core.ModelScheduler) (sim.Prefetcher, error) {
			opt := core.DefaultOptions()
			opt.Scheduler = ms
			det := phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: 7})
			return core.New(opt, cfg.HistoryT, det,
				append([]models.DeltaModel(nil), psd.Models...),
				append([]models.PageModel(nil), psp.Models...))
		},
		NewModelSession: func() core.ModelScheduler {
			if sched == nil {
				return nil
			}
			return sched.NewSession()
		},
		Events: &resilience.Log{},
	}
}

// sessionEvents is session i's deterministic synthetic access stream:
// sequential cache-block walks with occasional page jumps and a hot PC set,
// fixed by (seed, i) alone so a session's prediction log is a pure function
// of its identity.
func sessionEvents(seed int64, i, n int) []Event {
	rng := rand.New(rand.NewSource(seed + int64(i)*7919))
	addr := uint64(1<<22) + uint64(i)<<14
	out := make([]Event, n)
	for j := range out {
		if rng.Float64() < 0.12 {
			addr = uint64(1<<22) + uint64(rng.Intn(1<<10))<<12
		} else {
			addr += 64
		}
		out[j] = Event{
			Addr: addr,
			PC:   0x400000 + 0x40*uint64(rng.Intn(8)),
			Core: uint8(rng.Intn(4)),
		}
	}
	return out
}
