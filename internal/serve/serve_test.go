package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mpgraph/internal/core"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
)

// stubPF is a deterministic scriptable prefetcher for lifecycle tests: the
// real-model integration paths are covered by the chaos and replay tests.
type stubPF struct {
	name string
	op   func(sim.LLCAccess) []uint64
}

func (s *stubPF) Name() string                     { return s.name }
func (s *stubPF) Operate(a sim.LLCAccess) []uint64 { return s.op(a) }

// echoPF returns a primary that predicts the next block after each access.
func echoPF() sim.Prefetcher {
	return &stubPF{name: "echo", op: func(a sim.LLCAccess) []uint64 { return []uint64{a.Block + 1} }}
}

// stubConfig is a small-knob server config over stub prefetchers.
func stubConfig(primary func() sim.Prefetcher) Config {
	return Config{
		MaxSessions: 4,
		FlushEvery:  8,
		NewPrimary: func(core.ModelScheduler) (sim.Prefetcher, error) {
			return primary(), nil
		},
		NewFallback: func() sim.Prefetcher {
			return &stubPF{name: "fallback", op: func(sim.LLCAccess) []uint64 { return []uint64{9000} }}
		},
		Events: &resilience.Log{},
	}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// evs generates n deterministic events.
func evs(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{Addr: uint64(1<<20 + i*64), PC: 0x400040, Core: 1}
	}
	return out
}

// collect feeds events and returns the emitted predictions.
func collect(t *testing.T, srv *Server, id string, events []Event) []Prediction {
	t.Helper()
	var got []Prediction
	if err := srv.Feed(context.Background(), id, events, func(p Prediction) error {
		got = append(got, p)
		return nil
	}); err != nil {
		t.Fatalf("Feed(%s): %v", id, err)
	}
	return got
}

func TestConfigRequiresPrimary(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without NewPrimary must fail")
	}
}

// TestFeedStreamsInOrder: predictions carry the session's lifetime sequence
// numbers, continuing across feeds to the same session.
func TestFeedStreamsInOrder(t *testing.T) {
	srv := mustServer(t, stubConfig(echoPF))
	got := collect(t, srv, "s1", evs(20))
	if len(got) != 20 {
		t.Fatalf("got %d predictions, want 20", len(got))
	}
	for i, p := range got {
		if p.Seq != uint64(i+1) || p.Session != "s1" {
			t.Fatalf("prediction %d = %+v, want seq %d session s1", i, p, i+1)
		}
		if len(p.Blocks) != 1 || p.Blocks[0] != evs(20)[i].Addr>>6+1 {
			t.Fatalf("prediction %d blocks = %v", i, p.Blocks)
		}
	}
	// A second feed reuses the session: the sequence continues.
	more := collect(t, srv, "s1", evs(4))
	if more[0].Seq != 21 {
		t.Fatalf("second feed starts at seq %d, want 21", more[0].Seq)
	}
	st := srv.Stats()
	if st.Admitted != 1 || st.ActiveSessions != 1 || st.Events != 24 || st.Predictions != 24 {
		t.Fatalf("stats = %+v", st)
	}
}

// blockingHarness holds sessions busy deterministically: each session's
// first Operate signals readiness and then blocks until release.
type blockingHarness struct {
	started chan string
	release chan struct{}
}

func newBlockingHarness() *blockingHarness {
	return &blockingHarness{started: make(chan string, 16), release: make(chan struct{})}
}

func (h *blockingHarness) primary(id string) func() sim.Prefetcher {
	return func() sim.Prefetcher {
		first := true
		return &stubPF{name: "blocking", op: func(a sim.LLCAccess) []uint64 {
			if first {
				first = false
				h.started <- id
				<-h.release
			}
			return []uint64{a.Block + 1}
		}}
	}
}

// TestAdmissionControl: a full table of busy sessions rejects new sessions
// with ErrSaturated, concurrent feeds to one session conflict, and idle
// sessions are LRU-evicted to admit newcomers.
func TestAdmissionControl(t *testing.T) {
	h := newBlockingHarness()
	cfg := stubConfig(nil)
	next := "a"
	cfg.NewPrimary = func(core.ModelScheduler) (sim.Prefetcher, error) {
		return h.primary(next)(), nil
	}
	cfg.MaxSessions = 2
	srv := mustServer(t, cfg)

	var wg sync.WaitGroup
	feedAsync := func(id string) {
		next = id
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = srv.Feed(context.Background(), id, evs(2), func(Prediction) error { return nil })
		}()
		if got := <-h.started; got != id {
			t.Errorf("session %s started, want %s", got, id)
		}
	}
	feedAsync("a")
	feedAsync("b")

	// Table full of busy sessions: no idle victim, so a new session is
	// rejected with the backoff error.
	if err := srv.Feed(context.Background(), "c", evs(1), nil); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Feed(c) while saturated = %v, want ErrSaturated", err)
	}
	// A second feed to a busy session conflicts rather than interleaving.
	if err := srv.Feed(context.Background(), "a", evs(1), nil); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("concurrent Feed(a) = %v, want ErrSessionBusy", err)
	}
	close(h.release)
	wg.Wait()

	// Both sessions idle now: a newcomer evicts the LRU one.
	collect(t, srv, "c", evs(1))
	st := srv.Stats()
	if st.Evicted != 1 || st.Rejected != 1 || st.Admitted != 3 || st.ActiveSessions != 2 {
		t.Fatalf("stats = %+v, want 1 evicted / 1 rejected / 3 admitted / 2 active", st)
	}
	if st.PeakSessions > 2 {
		t.Fatalf("peak sessions %d exceeded MaxSessions 2", st.PeakSessions)
	}
}

// TestLRUEvictionOrder: the idle session with the oldest last use is the
// victim, and an evicted session's state is gone (its sequence restarts).
func TestLRUEvictionOrder(t *testing.T) {
	cfg := stubConfig(echoPF)
	cfg.MaxSessions = 2
	srv := mustServer(t, cfg)
	collect(t, srv, "old", evs(3))
	collect(t, srv, "young", evs(3))
	collect(t, srv, "old", evs(3)) // "old" is now the most recently used
	collect(t, srv, "newcomer", evs(1))

	if got := collect(t, srv, "old", evs(1)); got[0].Seq != 7 {
		t.Fatalf("survivor's seq = %d, want 7 (state retained)", got[0].Seq)
	}
	// "young" was the LRU victim; re-admitting it starts a fresh session.
	if got := collect(t, srv, "young", evs(1)); got[0].Seq != 1 {
		t.Fatalf("evicted session's seq = %d, want 1 (state dropped)", got[0].Seq)
	}
	if st := srv.Stats(); st.Evicted != 2 {
		t.Fatalf("stats = %+v, want 2 evictions", st)
	}
}

// TestCloseSession: close removes idle sessions immediately and dooms busy
// ones, which vanish when their feed completes.
func TestCloseSession(t *testing.T) {
	srv := mustServer(t, stubConfig(echoPF))
	collect(t, srv, "idle", evs(1))
	if !srv.Close("idle") {
		t.Fatal("Close(idle) = false, want true")
	}
	if srv.Close("idle") {
		t.Fatal("second Close must report an unknown session")
	}
	// Re-feeding re-admits with fresh state.
	if got := collect(t, srv, "idle", evs(1)); got[0].Seq != 1 {
		t.Fatalf("seq after close = %d, want 1", got[0].Seq)
	}

	// Closing a busy session dooms it: the in-flight feed completes, then
	// the session vanishes.
	h := newBlockingHarness()
	srv2 := mustServer(t, stubConfig(h.primary("busy")))
	done := make(chan error, 1)
	go func() {
		done <- srv2.Feed(context.Background(), "busy", evs(2), func(Prediction) error { return nil })
	}()
	<-h.started
	if !srv2.Close("busy") {
		t.Fatal("Close(busy) = false, want true")
	}
	close(h.release)
	if err := <-done; err != nil {
		t.Fatalf("doomed feed = %v", err)
	}
	if st := srv2.Stats(); st.ActiveSessions != 0 {
		t.Fatalf("stats = %+v, want the doomed session removed", st)
	}
}

// TestRequestDeadline: a canceled context fails the feed between chunks;
// predictions already computed in the finished chunk were emitted, nothing
// deadlocks, and the session stays usable.
func TestRequestDeadline(t *testing.T) {
	cfg := stubConfig(echoPF)
	cfg.FlushEvery = 2
	srv := mustServer(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	var got []Prediction
	err := srv.Feed(ctx, "s", evs(10), func(p Prediction) error {
		got = append(got, p)
		cancel() // expire the request after the first emitted chunk
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Feed = %v, want context.Canceled", err)
	}
	if len(got) != 2 {
		t.Fatalf("emitted %d predictions, want exactly the first chunk (2)", len(got))
	}
	// The session survives the timed-out request.
	if more := collect(t, srv, "s", evs(1)); more[0].Seq != 3 {
		t.Fatalf("post-deadline seq = %d, want 3", more[0].Seq)
	}
	if st := srv.Stats(); st.FeedErrors != 1 {
		t.Fatalf("stats = %+v, want 1 feed error", st)
	}
}

// TestShutdownDrains: draining rejects new feeds, waits for in-flight ones,
// and empties the session table without deadlock.
func TestShutdownDrains(t *testing.T) {
	h := newBlockingHarness()
	cfg := stubConfig(h.primary("s1"))
	srv := mustServer(t, cfg)

	feedDone := make(chan error, 1)
	go func() {
		feedDone <- srv.Feed(context.Background(), "s1", evs(2), func(Prediction) error { return nil })
	}()
	<-h.started

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	waitForDraining(t, srv)

	// New work is rejected while draining.
	if err := srv.Feed(context.Background(), "s2", evs(1), nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Feed while draining = %v, want ErrDraining", err)
	}
	close(h.release)
	if err := <-feedDone; err != nil {
		t.Fatalf("in-flight feed failed during drain: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	st := srv.Stats()
	if st.ActiveSessions != 0 || !st.Draining {
		t.Fatalf("post-drain stats = %+v, want empty drained table", st)
	}
	// Shutdown is sticky.
	if err := srv.Feed(context.Background(), "s3", evs(1), nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Feed after shutdown = %v, want ErrDraining", err)
	}
}

// TestShutdownDeadline: a drain blocked on a stuck feed respects the
// caller's deadline and can be completed by a later call.
func TestShutdownDeadline(t *testing.T) {
	h := newBlockingHarness()
	cfg := stubConfig(h.primary("s1"))
	srv := mustServer(t, cfg)
	feedDone := make(chan error, 1)
	go func() {
		feedDone <- srv.Feed(context.Background(), "s1", evs(2), func(Prediction) error { return nil })
	}()
	<-h.started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stuck feed = %v, want deadline exceeded", err)
	}
	close(h.release)
	if err := <-feedDone; err != nil {
		t.Fatalf("feed = %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown = %v", err)
	}
	if st := srv.Stats(); st.ActiveSessions != 0 {
		t.Fatalf("stats = %+v, want empty table", st)
	}
}

// TestAdmissionFaultInjection: injected admission faults (error and panic)
// fail only that request, are logged, and leave the daemon serving.
func TestAdmissionFaultInjection(t *testing.T) {
	cfg := stubConfig(echoPF)
	cfg.Injector = resilience.NewInjector(1).
		Arm(resilience.PointServeAdmit, resilience.KindErr, 1)
	srv := mustServer(t, cfg)
	err := srv.Feed(context.Background(), "s1", evs(1), nil)
	var admit *AdmissionError
	if !errors.As(err, &admit) {
		t.Fatalf("Feed under admit fault = %v, want AdmissionError", err)
	}
	// The fault fired once; the next admission succeeds.
	collect(t, srv, "s1", evs(1))
	st := srv.Stats()
	if st.AdmitFaults != 1 || st.Admitted != 1 {
		t.Fatalf("stats = %+v, want 1 admit fault then 1 admission", st)
	}

	// Panic kind: recovered at the admission boundary, same classification.
	cfg2 := stubConfig(echoPF)
	cfg2.Injector = resilience.NewInjector(1).
		Arm(resilience.PointServeAdmit, resilience.KindPanic, 1)
	srv2 := mustServer(t, cfg2)
	err = srv2.Feed(context.Background(), "p", evs(1), nil)
	if !errors.As(err, &admit) {
		t.Fatalf("Feed under admit panic = %v, want AdmissionError", err)
	}
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("AdmissionError cause = %v, want recovered panic", err)
	}
	collect(t, srv2, "p", evs(1))
}

// TestSessionFaultDegradesToFallback: an injected session fault trips the
// Guarded ladder — the faulted access and everything after quarantine is
// served by the warm fallback, the feed itself succeeds, and other sessions
// are untouched.
func TestSessionFaultDegradesToFallback(t *testing.T) {
	cfg := stubConfig(echoPF)
	cfg.Guard = prefetch.GuardConfig{MaxViolations: 1}
	cfg.Injector = resilience.NewInjector(1).
		Arm(resilience.PointServeSession, resilience.KindPanic, 2)
	srv := mustServer(t, cfg)

	got := collect(t, srv, "victim", evs(4))
	if len(got) != 4 {
		t.Fatalf("got %d predictions, want 4", len(got))
	}
	first := evs(4)[0].Addr>>6 + 1
	if got[0].Blocks[0] != first {
		t.Fatalf("healthy access served %v, want primary block %d", got[0].Blocks, first)
	}
	for i := 1; i < 4; i++ {
		if got[i].Blocks[0] != 9000 {
			t.Fatalf("access %d after fault served %v, want fallback block 9000", i, got[i].Blocks)
		}
	}
	if st := srv.Stats(); st.Degraded != 1 || st.FeedErrors != 0 {
		t.Fatalf("stats = %+v, want 1 degraded session and no feed errors", st)
	}
	if cfg.Events.Count("prefetch/echo", "quarantine") != 1 {
		t.Fatalf("events = %v, want one quarantine", cfg.Events.Events())
	}

	// Degradation is per-session: a fresh session runs on its own healthy
	// primary (the injector's once-arm has already fired).
	clean := collect(t, srv, "bystander", evs(2))
	for i, p := range clean {
		if p.Blocks[0] == 9000 {
			t.Fatalf("bystander access %d degraded: %+v", i, p)
		}
	}
	if st := srv.Stats(); st.Degraded != 1 {
		t.Fatalf("stats = %+v, want still exactly 1 degraded session", st)
	}
}

// TestFlushFaultFailsRequestOnly: a fault at the stream-flush boundary
// fails that request before anything is emitted, and the session remains
// serviceable afterwards.
func TestFlushFaultFailsRequestOnly(t *testing.T) {
	cfg := stubConfig(echoPF)
	cfg.FlushEvery = 4
	cfg.Injector = resilience.NewInjector(1).
		Arm(resilience.PointServeFlush, resilience.KindErr, 1)
	srv := mustServer(t, cfg)

	emitted := 0
	err := srv.Feed(context.Background(), "s", evs(4), func(Prediction) error {
		emitted++
		return nil
	})
	var ie *resilience.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("Feed under flush fault = %v, want injected error", err)
	}
	if emitted != 0 {
		t.Fatalf("emitted %d predictions from a failed flush, want 0", emitted)
	}
	// The chunk was consumed (at-most-once emission), the session lives on.
	if got := collect(t, srv, "s", evs(1)); got[0].Seq != 5 {
		t.Fatalf("post-fault seq = %d, want 5", got[0].Seq)
	}
	if st := srv.Stats(); st.FeedErrors != 1 {
		t.Fatalf("stats = %+v, want 1 feed error", st)
	}
}

// TestFeedBound: oversized feeds are rejected before touching the table.
func TestFeedBound(t *testing.T) {
	cfg := stubConfig(echoPF)
	cfg.MaxEventsPerFeed = 8
	srv := mustServer(t, cfg)
	if err := srv.Feed(context.Background(), "s", evs(9), nil); err == nil {
		t.Fatal("oversized feed must be rejected")
	}
	if st := srv.Stats(); st.Admitted != 0 {
		t.Fatalf("stats = %+v, want no admission for a rejected feed", st)
	}
}

// waitForDraining polls until Shutdown has marked the server draining.
func waitForDraining(t *testing.T, srv *Server) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if srv.Stats().Draining {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never started draining")
}
