// Package mpgraph is the public façade of the MPGraph reproduction: an
// ML-based LLC prefetcher for graph analytics (Zhang, Kannan, Prasanna —
// SC '23) together with every substrate it needs — graph generators, the
// GPOP/X-Stream/PowerGraph execution models that emit memory traces, a
// ChampSim-style multi-core cache simulator, a pure-Go neural-network stack,
// phase-transition detectors, and the baseline prefetchers it is compared
// against.
//
// The typical pipeline is:
//
//	sys := mpgraph.New(mpgraph.DefaultOptions())
//	wl := mpgraph.Workload{Framework: "gpop", App: mpgraph.PR, Dataset: "rmat"}
//	pf, _ := sys.TrainMPGraph(wl)              // phase-specific AMMA models + CSTP
//	metrics, baseline, _ := sys.Simulate(wl, pf)
//	fmt.Printf("IPC improvement: %.2f%%\n", metrics.IPCImprovement(baseline)*100)
//
// Everything the façade returns is an ordinary value from the internal
// packages, so advanced users can drop a level down: implement a custom
// sim.Prefetcher, train individual models.DeltaModel/PageModel instances, or
// drive the experiments.Runner that regenerates the paper's tables and
// figures (see cmd/mpgraph-experiments).
package mpgraph

import (
	"mpgraph/internal/core"
	"mpgraph/internal/experiments"
	"mpgraph/internal/frameworks"
	"mpgraph/internal/graph"
	"mpgraph/internal/sim"
	"mpgraph/internal/trace"
)

// Options configures a System; it is the experiment configuration re-used as
// the library entry point (scale, datasets, training budgets).
type Options = experiments.Options

// Workload identifies one framework × application × dataset combination.
type Workload = experiments.Workload

// App names a benchmark application.
type App = frameworks.App

// Benchmark applications (Table 1 of the paper).
const (
	BFS  = frameworks.BFS
	CC   = frameworks.CC
	PR   = frameworks.PR
	SSSP = frameworks.SSSP
	TC   = frameworks.TC
)

// Prefetcher is the LLC prefetcher interface; implement it to plug a custom
// prefetcher into Simulate.
type Prefetcher = sim.Prefetcher

// ControllerOptions configures the MPGraph prefetch controller (degrees,
// inference latency, oracle-phase ablation).
type ControllerOptions = core.Options

// DefaultControllerOptions mirrors the paper's Ds=2, Dt=2 configuration.
func DefaultControllerOptions() ControllerOptions { return core.DefaultOptions() }

// Metrics is a simulation result (IPC, prefetch accuracy, coverage, ...).
type Metrics = sim.Metrics

// DefaultOptions returns the fast reduced-scale configuration.
func DefaultOptions() Options { return experiments.DefaultOptions() }

// PaperOptions returns the paper-scale configuration (hours of compute).
func PaperOptions() Options { return experiments.PaperOptions() }

// System owns the cached pipeline: graphs, traces, captured LLC streams, and
// trained model suites.
type System struct {
	runner *experiments.Runner
}

// New builds a System.
func New(opt Options) *System {
	return &System{runner: experiments.NewRunner(opt)}
}

// Runner exposes the underlying experiment runner (tables/figures, advanced
// pipeline access).
func (s *System) Runner() *experiments.Runner { return s.runner }

// Graph generates (once) the named benchmark graph.
func (s *System) Graph(dataset string) (*graph.Graph, error) {
	return s.runner.Graph(dataset)
}

// Trace executes the workload's framework and returns its memory-access
// trace along with the algorithm result (for output validation).
func (s *System) Trace(w Workload) (*trace.Trace, *frameworks.Result, error) {
	d, err := s.runner.Data(w)
	if err != nil {
		return nil, nil, err
	}
	return d.Trace, d.Result, nil
}

// TrainMPGraph trains the full MPGraph prefetcher for the workload:
// phase-specific AMMA delta and page predictors on the first-iteration LLC
// stream, assembled with a Soft-KSWIN phase detector and the CSTP controller
// at the paper's degrees (Ds=2, Dt=2).
func (s *System) TrainMPGraph(w Workload) (*core.MPGraph, error) {
	return s.runner.MPGraph(w, core.DefaultOptions())
}

// TrainMPGraphWithOptions is TrainMPGraph with custom controller options
// (degrees, inference latency, oracle phases for ablations).
func (s *System) TrainMPGraphWithOptions(w Workload, opt core.Options) (*core.MPGraph, error) {
	return s.runner.MPGraph(w, opt)
}

// Baselines builds the paper's comparison prefetchers for the workload: BO,
// ISB, Delta-LSTM, Voyager, TransFetch, and MPGraph (in that order).
func (s *System) Baselines(w Workload) ([]Prefetcher, error) {
	return s.runner.Prefetchers(w)
}

// Simulate runs a prefetcher over the workload's test trace, returning its
// metrics and the cached no-prefetch baseline.
func (s *System) Simulate(w Workload, pf Prefetcher) (Metrics, Metrics, error) {
	return s.runner.Simulate(w, pf)
}

// Workloads enumerates the configured benchmark matrix.
func (s *System) Workloads() []Workload { return s.runner.Opt.Workloads() }
