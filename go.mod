module mpgraph

go 1.22
