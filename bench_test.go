package mpgraph

// One benchmark per paper table and figure (DESIGN.md §4). Each bench runs
// the corresponding experiment end to end at a tiny reproduction scale on a
// shared, lazily-built Runner, so `go test -bench=.` regenerates every
// artifact; `cmd/mpgraph-experiments` produces the full-scale reports.

import (
	"io"
	"sync"
	"testing"

	"mpgraph/internal/experiments"
	"mpgraph/internal/frameworks"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

func benchSetup() *experiments.Runner {
	benchOnce.Do(func() {
		opt := experiments.DefaultOptions()
		opt.GraphScale = 10
		opt.Apps = []frameworks.App{frameworks.PR}
		opt.TraceIterations = 3
		opt.MaxTestAccesses = 30_000
		opt.TrainSamples = 150
		opt.EvalSamples = 60
		opt.Epochs = 1
		benchRunner = experiments.NewRunner(opt)
	})
	return benchRunner
}

func benchExperiment(b *testing.B, fn func(io.Writer, *experiments.Runner) error) {
	b.Helper()
	r := benchSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Frameworks(b *testing.B) { benchExperiment(b, experiments.TableFrameworks) }
func BenchmarkTable2Datasets(b *testing.B)   { benchExperiment(b, experiments.TableDatasets) }
func BenchmarkTable3SimParams(b *testing.B)  { benchExperiment(b, experiments.TableSimParams) }
func BenchmarkFigure2PCA(b *testing.B)       { benchExperiment(b, experiments.FigurePCA) }
func BenchmarkFigure3PageJumps(b *testing.B) { benchExperiment(b, experiments.FigurePageJumps) }
func BenchmarkTable4PhaseDetection(b *testing.B) {
	benchExperiment(b, experiments.TablePhaseDetection)
}
func BenchmarkFigure9CaseStudy(b *testing.B) { benchExperiment(b, experiments.FigureCaseStudy) }
func BenchmarkTable5AMMAConfig(b *testing.B) { benchExperiment(b, experiments.TableAMMAConfig) }
func BenchmarkTable6DeltaF1(b *testing.B)    { benchExperiment(b, experiments.TableDeltaPrediction) }
func BenchmarkTable7PageAcc(b *testing.B)    { benchExperiment(b, experiments.TablePagePrediction) }
func BenchmarkFigure10Accuracy(b *testing.B) {
	benchExperiment(b, experiments.FigurePrefetchAccuracy)
}
func BenchmarkFigure11Coverage(b *testing.B) {
	benchExperiment(b, experiments.FigurePrefetchCoverage)
}
func BenchmarkFigure12IPC(b *testing.B)      { benchExperiment(b, experiments.FigureIPC) }
func BenchmarkFigure13KD(b *testing.B)       { benchExperiment(b, experiments.FigureDistillation) }
func BenchmarkFigure14DP(b *testing.B)       { benchExperiment(b, experiments.FigureDistancePrefetch) }
func BenchmarkTable8Complexity(b *testing.B) { benchExperiment(b, experiments.TableComplexity) }
func BenchmarkAblationCSTP(b *testing.B)     { benchExperiment(b, experiments.AblationCSTP) }
func BenchmarkAblationPhases(b *testing.B)   { benchExperiment(b, experiments.AblationPhases) }

// End-to-end façade benchmark: train + simulate MPGraph for one workload.
func BenchmarkEndToEndMPGraph(b *testing.B) {
	r := benchSetup()
	wl := r.Opt.Workloads()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := &System{runner: r}
		pf, err := sys.TrainMPGraph(wl)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sys.Simulate(wl, pf); err != nil {
			b.Fatal(err)
		}
	}
}
