#!/bin/sh
# serve_smoke.sh — end-to-end gate for the serving daemon (DESIGN.md §12).
#
# Boots mpgraph-serve on a tiny suite with session faults armed, drives 200
# closed-loop loadgen sessions against it, then SIGTERMs the daemon and
# verifies: loadgen saw zero hard failures, the daemon drained and exited 0,
# and its post-drain goroutine leak-check passed. The degradation-event log
# lands in serve-degrade.log for CI to archive.
set -eu

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:18080}"
SESSIONS="${SERVE_SMOKE_SESSIONS:-200}"
LOG="${SERVE_SMOKE_LOG:-serve-smoke.log}"
DEGRADE="${SERVE_SMOKE_DEGRADE:-serve-degrade.log}"

./bin/mpgraph-serve -addr "$ADDR" -workload gpop/pr/rmat -scale small \
    -graph-scale 9 -trace-iterations 2 -train-samples 512 -epochs 1 \
    -batch 8 -max-sessions 64 \
    -inject 'serve-session:panic~0.05' \
    -degrade-log "$DEGRADE" -leak-check >"$LOG" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Wait for the suite to train and the listener to come up.
i=0
until wget -q -O /dev/null "http://$ADDR/healthz" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 600 ]; then
        echo "serve_smoke: daemon never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve_smoke: daemon exited before becoming healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done

./bin/mpgraph-loadgen -addr "http://$ADDR" -sessions "$SESSIONS" \
    -events 128 -chunk 32 -concurrency 24

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "serve_smoke: daemon exited non-zero after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
trap - EXIT

grep -q 'leak-check: ok' "$LOG" || {
    echo "serve_smoke: missing post-drain leak-check confirmation" >&2
    cat "$LOG" >&2
    exit 1
}
test -s "$DEGRADE" || {
    echo "serve_smoke: degradation log $DEGRADE is empty — injected faults never surfaced" >&2
    exit 1
}
echo "serve_smoke: ok ($SESSIONS sessions, drained clean, no leaked goroutines)"
