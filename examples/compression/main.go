// Compression pipeline (the Section 6 scenario): train an AMMA teacher,
// distill it into a quarter-width student with a binary-encoded page head,
// quantize to 8 bits, and compare storage and prediction quality — the
// Fig. 13 trade-off in miniature.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"mpgraph"
	"mpgraph/internal/models"
	"mpgraph/internal/nn"
)

func main() {
	opt := mpgraph.DefaultOptions()
	opt.GraphScale = 11
	opt.TraceIterations = 3
	opt.TrainSamples = 1200
	opt.Epochs = 3
	sys := mpgraph.New(opt)
	wl := mpgraph.Workload{Framework: "powergraph", App: mpgraph.PR, Dataset: "rmat"}

	suite, err := sys.Runner().Suite(wl)
	if err != nil {
		log.Fatal(err)
	}
	teacher := suite.AMMAPage
	teacherF1 := models.EvalPageAccAtK(teacher, suite.Test.Samples, 10, 200)
	fmt.Printf("teacher: %d params, acc@10 %.3f\n", nn.CountParams(teacher), teacherF1)

	// Quarter-width student with binary page encoding.
	small := suite.Cfg
	small.AttnDim /= 4
	small.FusionDim /= 4
	small.Heads = 2
	student := models.NewBinaryPage(small, suite.Train.Pages, suite.Train.PCs, 7)
	dsSmall := &models.Dataset{Cfg: small, Samples: suite.Train.Samples, Pages: suite.Train.Pages, PCs: suite.Train.PCs}
	if err := models.DistillPage(student, teacher, dsSmall, models.DistillOptions{
		TrainOptions: models.TrainOptions{Epochs: 2, Seed: 3, MaxSamplesPerEpoch: opt.TrainSamples},
	}); err != nil {
		log.Fatal(err)
	}

	// Quantize the distilled student to 8-bit weights.
	rep, err := nn.Quantize(student, 8)
	if err != nil {
		log.Fatal(err)
	}
	testSmall := &models.Dataset{Cfg: small, Samples: suite.Test.Samples, Pages: suite.Test.Pages, PCs: suite.Test.PCs}
	studentAcc := models.EvalPageAccAtK(student, testSmall.Samples, 10, 200)

	ratio := float64(nn.CountParams(teacher)) / float64(nn.CountParams(student))
	fmt.Printf("student: %d params (%.1fx smaller), %d bytes at 8-bit, acc@10 %.3f\n",
		nn.CountParams(student), ratio, rep.StorageBytes, studentAcc)
	fmt.Printf("quantization: max error %.5f, mean error %.6f\n", rep.MaxError, rep.MeanError)
	fmt.Printf("retained %.0f%% of teacher accuracy at %.1fx compression\n",
		100*studentAcc/teacherF1, ratio)
}
