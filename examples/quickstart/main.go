// Quickstart: train the MPGraph prefetcher for one workload and compare it
// against the Best-Offset baseline and no prefetching.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpgraph"
	"mpgraph/internal/prefetch"
)

func main() {
	// Reduced budgets so the example finishes in well under a minute.
	opt := mpgraph.DefaultOptions()
	opt.GraphScale = 11
	opt.TraceIterations = 3
	opt.TrainSamples = 400
	opt.Epochs = 1
	opt.MaxTestAccesses = 100_000

	sys := mpgraph.New(opt)
	wl := mpgraph.Workload{Framework: "gpop", App: mpgraph.PR, Dataset: "rmat"}

	tr, res, err := sys.Trace(wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d accesses over %d iterations (converged=%v)\n",
		wl, len(tr.Accesses), res.Iterations, res.Converged)

	// MPGraph: phase-specific AMMA predictors + Soft-KSWIN detector + CSTP.
	mp, err := sys.TrainMPGraph(wl)
	if err != nil {
		log.Fatal(err)
	}

	for _, pf := range []mpgraph.Prefetcher{
		prefetch.NewBO(prefetch.DefaultBOConfig()),
		mp,
	} {
		m, base, err := sys.Simulate(wl, pf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s IPC %.4f -> %.4f (%+.2f%%)  accuracy %.1f%%  coverage %.1f%%\n",
			pf.Name(), base.IPC(), m.IPC(), m.IPCImprovement(base)*100,
			m.Accuracy()*100, m.Coverage()*100)
	}
}
