// Phase detection case study (the Fig. 9 scenario): run the hard KSWIN
// detector and the paper's Soft-KSWIN side by side on a GPOP PageRank LLC
// stream and show how soft detection suppresses false positives at the cost
// of a small lag.
//
//	go run ./examples/phasedetect
package main

import (
	"fmt"
	"log"

	"mpgraph"
	"mpgraph/internal/phasedet"
)

func main() {
	opt := mpgraph.DefaultOptions()
	opt.GraphScale = 11
	opt.TraceIterations = 5
	sys := mpgraph.New(opt)
	wl := mpgraph.Workload{Framework: "gpop", App: mpgraph.PR, Dataset: "rmat"}

	d, err := sys.Runner().Data(wl)
	if err != nil {
		log.Fatal(err)
	}
	// The detectors consume the PC stream the prefetcher sees at the LLC.
	xs := make([]float64, len(d.LLCTest))
	var truth []int
	for i, a := range d.LLCTest {
		xs[i] = float64(a.PC)
		if i > 0 && a.Phase != d.LLCTest[i-1].Phase {
			truth = append(truth, i)
		}
	}
	fmt.Printf("LLC stream: %d accesses, %d true phase transitions\n", len(xs), len(truth))

	hard := phasedet.RunDetector(phasedet.NewKSWIN(phasedet.KSWINConfig{Seed: 1}), xs)
	soft := phasedet.RunDetector(phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: 1}), xs)

	fmt.Printf("\n%-12s %5s  detections\n", "detector", "count")
	fmt.Printf("%-12s %5d  %v\n", "kswin", len(hard), head(hard, 10))
	fmt.Printf("%-12s %5d  %v\n", "soft-kswin", len(soft), head(soft, 10))
	fmt.Printf("%-12s %5d  %v\n", "truth", len(truth), head(truth, 10))

	tol := 2000
	hs := phasedet.EvaluateDetections(hard, truth, 0, tol)
	ss := phasedet.EvaluateDetections(soft, truth, 0, tol)
	fmt.Printf("\nkswin:      %v\n", hs)
	fmt.Printf("soft-kswin: %v\n", ss)
	if ss.Precision > hs.Precision {
		fmt.Println("\nSoft detection removed the impulse-shift false positives (Fig. 9's claim).")
	}
}

func head(xs []int, n int) []int {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}
