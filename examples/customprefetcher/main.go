// Custom prefetcher: shows how to implement the sim.Prefetcher interface and
// race a home-grown design against the built-in baselines on a real
// framework trace. The example builds a PC-localised stride prefetcher — a
// classic design that works on regular streams and collapses on graph
// analytics' irregular traffic, motivating the ML approach.
//
//	go run ./examples/customprefetcher
package main

import (
	"fmt"
	"log"

	"mpgraph"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/sim"
)

// strideEntry tracks one PC's last block and stride.
type strideEntry struct {
	last   uint64
	stride int64
	conf   int
}

// PCStride is a per-PC stride prefetcher with 2-bit confidence.
type PCStride struct {
	table  map[uint64]*strideEntry
	degree int
}

// NewPCStride builds the prefetcher.
func NewPCStride(degree int) *PCStride {
	return &PCStride{table: make(map[uint64]*strideEntry), degree: degree}
}

// Name implements sim.Prefetcher.
func (p *PCStride) Name() string { return "pc-stride" }

// Operate implements sim.Prefetcher.
func (p *PCStride) Operate(acc sim.LLCAccess) []uint64 {
	e, ok := p.table[acc.PC]
	if !ok {
		if len(p.table) > 4096 {
			for k := range p.table {
				delete(p.table, k)
				break
			}
		}
		p.table[acc.PC] = &strideEntry{last: acc.Block}
		return nil
	}
	stride := int64(acc.Block) - int64(e.last)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.last = acc.Block
	if e.conf < 2 {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	for k := 1; k <= p.degree; k++ {
		t := int64(acc.Block) + e.stride*int64(k)
		if t >= 0 {
			out = append(out, uint64(t))
		}
	}
	return out
}

func main() {
	opt := mpgraph.DefaultOptions()
	opt.GraphScale = 11
	opt.TraceIterations = 3
	opt.MaxTestAccesses = 100_000
	sys := mpgraph.New(opt)

	for _, wl := range []mpgraph.Workload{
		{Framework: "gpop", App: mpgraph.PR, Dataset: "rmat"},
		{Framework: "powergraph", App: mpgraph.PR, Dataset: "rmat"},
	} {
		fmt.Printf("--- %s ---\n", wl)
		for _, pf := range []mpgraph.Prefetcher{
			NewPCStride(6),
			prefetch.NewBO(prefetch.DefaultBOConfig()),
			prefetch.NewISB(prefetch.DefaultISBConfig()),
		} {
			m, base, err := sys.Simulate(wl, pf)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s IPC %+.2f%%  accuracy %.1f%%  coverage %.1f%% (issued %d)\n",
				pf.Name(), m.IPCImprovement(base)*100, m.Accuracy()*100, m.Coverage()*100, m.PrefetchesIssued)
		}
	}
}
