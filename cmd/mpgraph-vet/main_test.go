package main

import (
	"sort"
	"testing"

	"mpgraph/internal/analysis/passes/directive"
)

// TestRosterMatchesDirectiveKnown pins the directive analyzer's Known list
// to the registered suite: an //mpgraph:allow directive may cite exactly
// the analyzers this binary runs, so adding a pass without updating Known
// (or vice versa) fails here instead of silently misvalidating directives.
func TestRosterMatchesDirectiveKnown(t *testing.T) {
	var names []string
	for _, a := range suite {
		names = append(names, a.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("suite is not sorted by analyzer name: %v", names)
	}
	known := append([]string(nil), directive.Known...)
	if !sort.StringsAreSorted(known) {
		t.Errorf("directive.Known is not sorted: %v", known)
	}
	if len(names) != len(known) {
		t.Fatalf("suite has %d analyzers, directive.Known lists %d:\nsuite: %v\nknown: %v",
			len(names), len(known), names, known)
	}
	for i := range names {
		if names[i] != known[i] {
			t.Errorf("roster mismatch at %d: suite %q vs directive.Known %q", i, names[i], known[i])
		}
	}
}
