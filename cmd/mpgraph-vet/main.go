// Command mpgraph-vet is the project's static-analysis gate: it chains the
// standard `go vet` passes with the fourteen MPGraph-specific analyzers
// (seededrand, errdrop, floateq, panicpolicy, addrhelpers, maporder,
// walltime, noalloc, lockcheck, golifetime, chansafe, ctxflow, directive,
// injectpoint) and exits non-zero on any finding. It is part of tier-1: CI
// runs it on every push (.github/workflows/ci.yml), and `make lint` runs it
// locally.
//
// Usage:
//
//	go run ./cmd/mpgraph-vet [-novet] [-list] [-fix] [-json] [-out file] [-facts-dir dir] [patterns...]
//
// Patterns default to ./... and accept the usual ./dir/... forms relative
// to the module root. -novet skips the delegated `go vet` run (useful when
// iterating on one analyzer); -list prints the analyzer roster and exits.
//
// -fix applies each finding's suggested rewrite (maporder's sorted-keys
// loop, walltime's allow directive, lockcheck's deferred unlock, ctxflow's
// threaded context, directive's TODO reason) in place, skipping fixes whose
// edits would overlap, and prints what it changed; findings without a fix
// are printed and still fail the run. One -fix pass converges: applying the
// fixes a second time changes nothing (`make vet-fix-check` enforces this
// on a copy of the tree).
//
// -json prints each finding as one JSON object per line (package, file,
// line, col, analyzer, message, fixable) instead of the human format —
// machine-readable for editors and for the GitHub Actions problem matcher
// in .github/mpgraph-vet-matcher.json. Findings are sorted by (package
// path, file, byte offset, analyzer), so output is byte-deterministic in
// both formats regardless of package load order.
//
// -out additionally writes the findings to a file — CI uploads it as the
// mpgraph-vet diagnostics artifact so findings are inspectable without
// re-running the job.
//
// -facts-dir exports the cross-package fact layer (internal/analysis/facts):
// one JSON file per loaded package holding its per-function summaries
// (allocation-freedom with provenance, may-panic, blocking, sinks, recovery
// boundaries, injection-point literals, lock sets) plus the injection-point
// roster. The files are byte-deterministic — CI runs the export twice and
// diffs the directories — and ship as an artifact next to vet-self.jsonl.
//
// Findings are suppressed per line by a trailing
// "//mpgraph:allow name[,name] -- reason" directive; the reason is
// mandatory and the directive analyzer enforces it (along with the rest of
// the //mpgraph: vocabulary). See DESIGN.md's "Static analysis" section
// for the invariants each analyzer encodes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/passes/addrhelpers"
	"mpgraph/internal/analysis/passes/chansafe"
	"mpgraph/internal/analysis/passes/ctxflow"
	"mpgraph/internal/analysis/passes/directive"
	"mpgraph/internal/analysis/passes/errdrop"
	"mpgraph/internal/analysis/passes/floateq"
	"mpgraph/internal/analysis/passes/golifetime"
	"mpgraph/internal/analysis/passes/injectpoint"
	"mpgraph/internal/analysis/passes/lockcheck"
	"mpgraph/internal/analysis/passes/maporder"
	"mpgraph/internal/analysis/passes/noalloc"
	"mpgraph/internal/analysis/passes/panicpolicy"
	"mpgraph/internal/analysis/passes/seededrand"
	"mpgraph/internal/analysis/passes/walltime"
)

var suite = []*analysis.Analyzer{
	addrhelpers.Analyzer,
	chansafe.Analyzer,
	ctxflow.Analyzer,
	directive.Analyzer,
	errdrop.Analyzer,
	floateq.Analyzer,
	golifetime.Analyzer,
	injectpoint.Analyzer,
	lockcheck.Analyzer,
	maporder.Analyzer,
	noalloc.Analyzer,
	panicpolicy.Analyzer,
	seededrand.Analyzer,
	walltime.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the delegated `go vet` run")
	list := flag.Bool("list", false, "print the analyzer roster and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	jsonOut := flag.Bool("json", false, "print one JSON object per finding instead of the human format")
	out := flag.String("out", "", "also write findings to this file (CI artifact)")
	factsDir := flag.String("facts-dir", "", "export per-package fact files (byte-deterministic JSON) to this directory")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	failed := false
	if !*novet {
		vet := exec.Command("go", "vet")
		vet.Args = append(vet.Args, patterns...)
		vet.Dir = root
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fatal(err)
	}
	// Complete = the target set covers the whole module, the precondition
	// for whole-program absence checks (injectpoint's declared-never-fired).
	complete := false
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			complete = true
		}
	}
	opt := analysis.Options{All: loader.Loaded(), FactsDir: *factsDir, Complete: complete}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}

	if *fix {
		if applyFixes(loader, pkgs, sink, opt) || failed {
			os.Exit(1)
		}
		return
	}

	run := analysis.RunAnalyzers
	if *jsonOut {
		run = analysis.RunAnalyzersJSON
	}
	n, err := run(pkgs, suite, sink, opt)
	if err != nil {
		fatal(err)
	}
	if n > 0 || failed {
		os.Exit(1)
	}
}

// applyFixes runs the suite, writes every suggested rewrite back to disk,
// and prints the findings that had no fix. Returns true when unresolved
// findings remain.
func applyFixes(loader *analysis.Loader, pkgs []*analysis.Package, sink io.Writer, opt analysis.Options) bool {
	diags, err := analysis.AnalyzeOpts(pkgs, suite, opt)
	if err != nil {
		fatal(err)
	}
	res, err := analysis.ApplyFixes(loader.Fset, diags, nil)
	if err != nil {
		fatal(err)
	}
	for file, src := range res.Files {
		if err := os.WriteFile(file, src, 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "mpgraph-vet -fix: %d fix(es) applied across %d file(s), %d skipped for overlap\n",
		res.Applied, len(res.Files), res.Skipped)

	unresolved := 0
	for _, d := range diags {
		if len(d.SuggestedFixes) > 0 {
			continue
		}
		unresolved++
		fmt.Fprintf(sink, "%s: %s (%s)\n", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return unresolved > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpgraph-vet:", err)
	os.Exit(2)
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
