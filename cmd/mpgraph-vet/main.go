// Command mpgraph-vet is the project's static-analysis gate: it chains the
// standard `go vet` passes with the six MPGraph-specific analyzers
// (seededrand, errdrop, floateq, panicpolicy, addrhelpers, goroutineguard)
// and exits
// non-zero on any finding. It is part of tier-1: CI runs it on every push
// (.github/workflows/ci.yml), and `make lint` runs it locally.
//
// Usage:
//
//	go run ./cmd/mpgraph-vet [-novet] [-list] [patterns...]
//
// Patterns default to ./... and accept the usual ./dir/... forms relative
// to the module root. -novet skips the delegated `go vet` run (useful when
// iterating on one analyzer); -list prints the analyzer roster and exits.
//
// Findings are suppressed per line by a trailing
// "//mpgraph:allow name[,name] -- reason" directive; the reason is
// mandatory. See DESIGN.md's "Static analysis" section for the invariants
// each analyzer encodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/passes/addrhelpers"
	"mpgraph/internal/analysis/passes/errdrop"
	"mpgraph/internal/analysis/passes/floateq"
	"mpgraph/internal/analysis/passes/goroutineguard"
	"mpgraph/internal/analysis/passes/panicpolicy"
	"mpgraph/internal/analysis/passes/seededrand"
)

var suite = []*analysis.Analyzer{
	addrhelpers.Analyzer,
	errdrop.Analyzer,
	floateq.Analyzer,
	goroutineguard.Analyzer,
	panicpolicy.Analyzer,
	seededrand.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the delegated `go vet` run")
	list := flag.Bool("list", false, "print the analyzer roster and exit")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpgraph-vet:", err)
		os.Exit(2)
	}

	failed := false
	if !*novet {
		vet := exec.Command("go", "vet")
		vet.Args = append(vet.Args, patterns...)
		vet.Dir = root
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpgraph-vet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpgraph-vet:", err)
		os.Exit(2)
	}
	n, err := analysis.RunAnalyzers(pkgs, suite, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpgraph-vet:", err)
		os.Exit(2)
	}
	if n > 0 || failed {
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
