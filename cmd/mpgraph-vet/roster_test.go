package main

import (
	"sort"
	"testing"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/facts"
	"mpgraph/internal/resilience"
)

// TestInjectionRosterMatchesFiredPoints loads the whole module, summarises
// every function through the fact layer, and pins the declared injection
// roster to the set of points actually fired or armed by non-test code:
//
//   - a declared point nobody fires is dead chaos surface (no drill can
//     exercise it) — the same defect injectpoint's Finish reports, enforced
//     here as a test so `go test ./...` catches it without running vet;
//   - a fired point that is not declared would be swallowed silently at
//     runtime (Fire of an unknown point arms nothing).
func TestInjectionRosterMatchesFiredPoints(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load([]string{"./..."}); err != nil {
		t.Fatal(err)
	}

	// Fires/Arms are leaf facts (no cross-package propagation), so package
	// order does not affect the collected set.
	store := facts.NewStore()
	used := map[string]bool{}
	for _, pkg := range loader.Loaded() {
		pf := facts.Compute(loader.Fset, pkg.Files, pkg.Types, pkg.Info, store)
		store.Add(pf)
		for _, fn := range pf.Funcs {
			for _, p := range fn.Fires {
				used[p] = true
			}
			for _, p := range fn.Arms {
				used[p] = true
			}
		}
	}
	if used["*"] {
		t.Log("a non-constant point argument exists in-tree; the declared-side check below is advisory")
	}
	delete(used, "*")

	declared := map[string]bool{}
	for _, p := range resilience.Points() {
		declared[string(p)] = true
	}

	var missing, undeclared []string
	for p := range declared {
		if !used[p] {
			missing = append(missing, p)
		}
	}
	for p := range used {
		if !declared[p] {
			undeclared = append(undeclared, p)
		}
	}
	sort.Strings(missing)
	sort.Strings(undeclared)
	if len(missing) > 0 {
		t.Errorf("declared injection points never fired or armed in-tree: %v", missing)
	}
	if len(undeclared) > 0 {
		t.Errorf("points fired or armed in-tree but missing from resilience.Points(): %v", undeclared)
	}
}
