// Command mpgraph-loadgen is a closed-loop load generator for
// mpgraph-serve: N logical sessions, each with a seeded synthetic access
// stream shaped like graph-analytics traffic (sequential partition walks
// with power-law-ish jumps), driven by a bounded worker pool. Each worker
// POSTs one session chunk, reads the full prediction stream back, and only
// then issues its next request — so concurrency, not arrival rate, is the
// controlled variable.
//
// Saturation responses (429/503) honour the server's Retry-After hint and
// retry; everything else non-200 is an error. The run ends with a
// per-request latency histogram and totals; exit status is non-zero when
// any session failed outright.
//
// Usage:
//
//	mpgraph-loadgen -addr http://localhost:8080 -sessions 200 -events 256
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

type event struct {
	Addr uint64 `json:"addr"`
	PC   uint64 `json:"pc"`
	Core uint8  `json:"core"`
}

// tally aggregates worker results under one mutex.
type tally struct {
	mu          sync.Mutex
	latencies   []time.Duration
	requests    int
	events      int
	predictions int
	retries     int
	failures    []string
}

func (t *tally) request(d time.Duration, events, preds int) {
	t.mu.Lock()
	t.latencies = append(t.latencies, d)
	t.requests++
	t.events += events
	t.predictions += preds
	t.mu.Unlock()
}

func (t *tally) retry() {
	t.mu.Lock()
	t.retries++
	t.mu.Unlock()
}

func (t *tally) fail(msg string) {
	t.mu.Lock()
	t.failures = append(t.failures, msg)
	t.mu.Unlock()
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "mpgraph-serve base URL")
		sessions    = flag.Int("sessions", 200, "number of logical sessions")
		events      = flag.Int("events", 256, "events per session")
		chunk       = flag.Int("chunk", 64, "events per request")
		concurrency = flag.Int("concurrency", 32, "concurrent in-flight sessions (closed loop)")
		seed        = flag.Int64("seed", 1, "stream-generation seed")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		maxRetries  = flag.Int("max-retries", 50, "max Retry-After backoffs per request before giving up")
		outPath     = flag.String("out", "", "write the report to this file as well as stdout")
	)
	flag.Parse()
	if *sessions <= 0 || *events <= 0 || *chunk <= 0 || *concurrency <= 0 {
		fatalf("-sessions, -events, -chunk and -concurrency must be positive")
	}

	client := &http.Client{Timeout: *timeout}
	t := &tally{}
	ids := make(chan int, *sessions)
	for i := 0; i < *sessions; i++ {
		ids <- i
	}
	close(ids)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ids {
				runSession(client, *addr, i, *seed, *events, *chunk, *maxRetries, t)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("-out: %v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	report(w, t, elapsed)
	if len(t.failures) > 0 {
		os.Exit(1)
	}
}

// runSession drives one session's whole stream, chunk by chunk.
func runSession(client *http.Client, addr string, i int, seed int64, events, chunk, maxRetries int, t *tally) {
	stream := sessionStream(seed, i, events)
	id := fmt.Sprintf("loadgen-%d", i)
	for start := 0; start < len(stream); start += chunk {
		end := start + chunk
		if end > len(stream) {
			end = len(stream)
		}
		if !postChunk(client, addr, id, stream[start:end], maxRetries, t) {
			return
		}
	}
}

// postChunk sends one chunk, honouring Retry-After backoff on saturation.
// Reports whether the session should continue.
func postChunk(client *http.Client, addr, id string, chunk []event, maxRetries int, t *tally) bool {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, ev := range chunk {
		if err := enc.Encode(ev); err != nil {
			t.fail(fmt.Sprintf("%s: encode: %v", id, err))
			return false
		}
	}
	url := addr + "/v1/sessions/" + id + "/events"
	for attempt := 0; ; attempt++ {
		begin := time.Now()
		resp, err := client.Post(url, "application/x-ndjson", bytes.NewReader(body.Bytes()))
		if err != nil {
			t.fail(fmt.Sprintf("%s: %v", id, err))
			return false
		}
		switch resp.StatusCode {
		case http.StatusOK:
			preds, err := drainPredictions(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.fail(fmt.Sprintf("%s: reading predictions: %v", id, err))
				return false
			}
			t.request(time.Since(begin), len(chunk), preds)
			return true
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			resp.Body.Close()
			if attempt >= maxRetries {
				t.fail(fmt.Sprintf("%s: still saturated after %d retries", id, attempt))
				return false
			}
			t.retry()
			time.Sleep(retryAfter(resp))
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			t.fail(fmt.Sprintf("%s: HTTP %d: %s", id, resp.StatusCode, bytes.TrimSpace(msg)))
			return false
		}
	}
}

// drainPredictions counts the prediction lines of one response stream and
// surfaces a trailing error line as an error.
func drainPredictions(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	for {
		var line struct {
			Seq   uint64 `json:"seq"`
			Error string `json:"error"`
		}
		if err := dec.Decode(&line); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, err
		}
		if line.Error != "" {
			return n, fmt.Errorf("server: %s", line.Error)
		}
		n++
	}
}

// retryAfter parses the Retry-After hint, defaulting to 100ms and clamping
// to 2s so a chaos-injected hint cannot stall the generator.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			if d > 0 {
				return d
			}
		}
	}
	return 100 * time.Millisecond
}

// sessionStream generates session i's access stream: per-partition
// sequential walks (the scatter/gather inner loops) interrupted by jumps to
// other partitions, with a small hot PC set — the shape the CSTP/PBOT
// tables are built for. Deterministic in (seed, i).
func sessionStream(seed int64, i, n int) []event {
	rng := rand.New(rand.NewSource(seed ^ int64(uint64(i)*0x9e3779b97f4a7c15)))
	const pageBytes = 1 << 12
	base := uint64(rng.Intn(1<<20)) * pageBytes
	addr := base
	out := make([]event, n)
	for j := range out {
		switch {
		case rng.Float64() < 0.15: // jump to another partition
			addr = base + uint64(rng.Intn(1<<14))*pageBytes
		default: // sequential walk, cache-block stride
			addr += 64
		}
		out[j] = event{
			Addr: addr,
			PC:   0x400000 + uint64(rng.Intn(8))*4,
			Core: uint8(rng.Intn(4)),
		}
	}
	return out
}

// report prints totals and a power-of-two latency histogram.
func report(w io.Writer, t *tally, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(w, "mpgraph-loadgen: %d requests, %d events, %d predictions, %d retries, %d failures in %s\n",
		t.requests, t.events, t.predictions, t.retries, len(t.failures), elapsed.Round(time.Millisecond))
	if len(t.latencies) > 0 {
		sorted := append([]time.Duration(nil), t.latencies...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		fmt.Fprintf(w, "latency: p50=%s p90=%s p99=%s max=%s\n",
			pct(sorted, 50), pct(sorted, 90), pct(sorted, 99), sorted[len(sorted)-1].Round(time.Microsecond))
		fmt.Fprintln(w, "histogram (request latency):")
		printHistogram(w, sorted)
	}
	for _, f := range t.failures {
		fmt.Fprintf(w, "FAIL %s\n", f)
	}
}

func pct(sorted []time.Duration, p int) time.Duration {
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(time.Microsecond)
}

// printHistogram renders power-of-two microsecond buckets.
func printHistogram(w io.Writer, sorted []time.Duration) {
	counts := map[int]int{}
	maxBucket := 0
	for _, d := range sorted {
		us := d.Microseconds()
		b := 0
		for v := int64(1); v < us; v <<= 1 {
			b++
		}
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	for b := 0; b <= maxBucket; b++ {
		lo := int64(0)
		if b > 0 {
			lo = 1 << (b - 1)
		}
		hi := int64(1) << b
		n := counts[b]
		bar := ""
		if len(sorted) > 0 {
			bar = repeat('#', n*40/len(sorted))
		}
		fmt.Fprintf(w, "  %8dus..%8dus %6d %s\n", lo, hi, n, bar)
	}
}

func repeat(c byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpgraph-loadgen: "+format+"\n", args...)
	os.Exit(1)
}
