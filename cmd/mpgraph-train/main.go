// Command mpgraph-train performs the paper's offline training step (Fig. 6):
// it replays a trace's first iteration through the cache hierarchy to
// extract the shared-LLC access stream, trains phase-specific AMMA delta and
// page predictors on it, and writes the deployable model artifact that
// mpgraph-sim loads.
//
// Usage:
//
//	mpgraph-train -trace pr.trace -o pr.models -epochs 2 -samples 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"mpgraph/internal/models"
	"mpgraph/internal/sim"
	"mpgraph/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace from mpgraph-trace (required)")
		out       = flag.String("o", "", "output model file (required)")
		scale     = flag.String("scale", "small", "model scale: small | paper")
		epochs    = flag.Int("epochs", 2, "training epochs")
		samples   = flag.Int("samples", 2000, "training samples per epoch")
		seed      = flag.Int64("seed", 1, "training seed")
	)
	flag.Parse()
	if *tracePath == "" || *out == "" {
		fatalf("need -trace and -o")
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatalf("%v", err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatalf("read trace: %v", err)
	}
	if tr.NumIterations() < 1 {
		fatalf("trace has no iterations")
	}

	// Extract the LLC stream of the first iteration.
	lo, hi, err := tr.Iteration(0)
	if err != nil {
		fatalf("%v", err)
	}
	eng, err := sim.NewEngine(sim.DefaultConfig(), nil)
	if err != nil {
		fatalf("%v", err)
	}
	var llc []trace.Access
	eng.Recorder = func(a trace.Access, hit bool) { llc = append(llc, a) }
	eng.Run(tr.Accesses[lo:hi])
	fmt.Fprintf(os.Stderr, "LLC training stream: %d of %d accesses\n", len(llc), hi-lo)

	cfg := models.SmallConfig()
	if *scale == "paper" {
		cfg = models.PaperConfig()
	}
	cfg.Seed = *seed
	usable := len(llc) - cfg.HistoryT - cfg.LookForwardF
	if usable <= 0 {
		fatalf("LLC stream too short (%d accesses) for T=%d F=%d", len(llc), cfg.HistoryT, cfg.LookForwardF)
	}
	ds, err := models.BuildDataset(cfg, llc, models.DatasetOptions{
		Stride:     usable/(*samples*2) + 1,
		MaxSamples: *samples * 2,
	})
	if err != nil {
		fatalf("build dataset: %v", err)
	}
	fmt.Fprintf(os.Stderr, "dataset: %d samples, %d phases, %d pages, %d PCs\n",
		len(ds.Samples), ds.NumPhases(), ds.Pages.Size(), ds.PCs.Size())

	phases := tr.NumPhases
	if phases < 1 {
		phases = ds.NumPhases()
	}
	pm, err := models.TrainPrefetcherModels(ds, phases, models.TrainOptions{
		Epochs: *epochs, Seed: *seed, MaxSamplesPerEpoch: *samples,
	})
	if err != nil {
		fatalf("train: %v", err)
	}

	of, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer of.Close()
	if err := pm.Save(of); err != nil {
		fatalf("save models: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d phases)\n", *out, pm.NumPhases())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpgraph-train: "+format+"\n", args...)
	os.Exit(1)
}
