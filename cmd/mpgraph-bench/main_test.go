package main

import (
	"math"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: mpgraph/internal/prefetch
cpu: some cpu
BenchmarkOperateDeltaLSTM-8 	    2000	     71578 ns/op	       0 B/op	       0 allocs/op
BenchmarkOperateDeltaLSTM-8 	    2000	     72000 ns/op	       0 B/op	       0 allocs/op
BenchmarkOperateDeltaLSTMLegacy-8 	    2000	    143578 ns/op	  512000 B/op	    1200 allocs/op
PASS
ok  	mpgraph/internal/prefetch	3.375s
pkg: mpgraph/internal/experiments
BenchmarkPrefetchSweepSerial 	       1	1717870046 ns/op
BenchmarkPrefetchSweepLegacySerial 	       1	3685844300 ns/op
ok  	mpgraph/internal/experiments	14.201s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(results))
	}
	first := results[0]
	if first.Pkg != "mpgraph/internal/prefetch" {
		t.Fatalf("pkg = %q", first.Pkg)
	}
	if first.Name != "BenchmarkOperateDeltaLSTM" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", first.Name)
	}
	if first.Iters != 2000 || first.NsPerOp != 71578 {
		t.Fatalf("iters/ns = %d/%g", first.Iters, first.NsPerOp)
	}
	legacy := results[2]
	if legacy.BytesPerOp != 512000 || legacy.AllocsPerOp != 1200 {
		t.Fatalf("B/allocs = %d/%d", legacy.BytesPerOp, legacy.AllocsPerOp)
	}
	sweep := results[3]
	if sweep.Pkg != "mpgraph/internal/experiments" {
		t.Fatalf("sweep pkg = %q", sweep.Pkg)
	}
	if sweep.BytesPerOp != 0 || sweep.AllocsPerOp != 0 {
		t.Fatalf("missing B/op fields must stay zero, got %d/%d", sweep.BytesPerOp, sweep.AllocsPerOp)
	}
}

func TestPairSpeedups(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	sp := pairSpeedups(results)
	if len(sp) != 2 {
		t.Fatalf("got %d speedup pairs, want 2", len(sp))
	}
	// The two DeltaLSTM runs average to 71789 ns/op before pairing.
	lstm := sp[0]
	if lstm.Name != "OperateDeltaLSTM" {
		t.Fatalf("pair name = %q", lstm.Name)
	}
	if math.Abs(lstm.FastNs-71789) > 1 {
		t.Fatalf("fast ns = %g, want ~71789", lstm.FastNs)
	}
	if math.Abs(lstm.Speedup-143578.0/71789.0) > 1e-9 {
		t.Fatalf("speedup = %g", lstm.Speedup)
	}
	sweep := sp[1]
	if sweep.Name != "PrefetchSweepSerial" {
		t.Fatalf("pair name = %q", sweep.Name)
	}
	if sweep.Speedup < 2 {
		t.Fatalf("sample sweep speedup = %g, want > 2", sweep.Speedup)
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkBroken 12 fast\n"))
	if err == nil {
		t.Fatal("malformed benchmark line must error")
	}
}

func TestPairSpeedupsInt8(t *testing.T) {
	const int8Bench = `
pkg: mpgraph/internal/core
BenchmarkOperateMPGraphAMMA-8 	    5000	    215700 ns/op	       0 B/op	       0 allocs/op
BenchmarkOperateMPGraphAMMAInt8-8 	    9000	    119200 ns/op	       0 B/op	       0 allocs/op
ok  	mpgraph/internal/core	2.001s
`
	results, err := parseBench(strings.NewReader(int8Bench))
	if err != nil {
		t.Fatal(err)
	}
	sp := pairSpeedups(results)
	if len(sp) != 1 {
		t.Fatalf("got %d speedup pairs, want 1", len(sp))
	}
	p := sp[0]
	if p.Name != "OperateMPGraphAMMAInt8" {
		t.Fatalf("pair name = %q", p.Name)
	}
	// The int8 variant is the fast side; the float run is the baseline.
	if p.FastNs != 119200 || p.BaseNs != 215700 {
		t.Fatalf("fast/base ns = %g/%g", p.FastNs, p.BaseNs)
	}
	if math.Abs(p.Speedup-215700.0/119200.0) > 1e-9 {
		t.Fatalf("speedup = %g", p.Speedup)
	}
}

func compareFixture() (Report, Report) {
	env := Env{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8, NumCPU: 8}
	old := Report{Env: env, Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkOperateFast", NsPerOp: 1000, AllocsPerOp: 0},
		{Pkg: "p", Name: "BenchmarkOperateFastLegacy", NsPerOp: 5000, AllocsPerOp: 99},
	}}
	new := Report{Env: env, Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkOperateFast", NsPerOp: 1000, AllocsPerOp: 0},
		{Pkg: "p", Name: "BenchmarkOperateFastLegacy", NsPerOp: 50000, AllocsPerOp: 999},
	}}
	return old, new
}

func TestCompareReportsClean(t *testing.T) {
	old, new := compareFixture()
	var sb strings.Builder
	// A Legacy benchmark may regress arbitrarily without tripping the gate.
	if n := compareReports(&sb, old, new); n != 0 {
		t.Fatalf("clean compare reported %d regressions:\n%s", n, sb.String())
	}
}

func TestCompareReportsNsRegression(t *testing.T) {
	old, new := compareFixture()
	new.Benchmarks[0].NsPerOp = 1151 // just over the 15% threshold
	var sb strings.Builder
	if n := compareReports(&sb, old, new); n != 1 {
		t.Fatalf("ns regression count = %d, want 1:\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION BenchmarkOperateFast ns/op") {
		t.Fatalf("missing ns regression line:\n%s", sb.String())
	}
	new.Benchmarks[0].NsPerOp = 1150 // exactly at the threshold: allowed
	sb.Reset()
	if n := compareReports(&sb, old, new); n != 0 {
		t.Fatalf("at-threshold compare reported %d regressions:\n%s", n, sb.String())
	}
}

func TestCompareReportsAllocRegression(t *testing.T) {
	old, new := compareFixture()
	new.Benchmarks[0].AllocsPerOp = 1
	var sb strings.Builder
	if n := compareReports(&sb, old, new); n != 1 {
		t.Fatalf("alloc regression count = %d, want 1:\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "allocs/op 0 -> 1") {
		t.Fatalf("missing alloc regression line:\n%s", sb.String())
	}
}

func TestCompareReportsEnvMismatch(t *testing.T) {
	old, new := compareFixture()
	new.Env.GOMAXPROCS = 4
	new.Benchmarks[0].NsPerOp = 99999 // huge ns swing: ignored cross-env
	new.Benchmarks[0].AllocsPerOp = 2 // alloc gains still enforced
	var sb strings.Builder
	if n := compareReports(&sb, old, new); n != 1 {
		t.Fatalf("cross-env regression count = %d, want 1 (allocs only):\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "environment mismatch") {
		t.Fatalf("missing env-mismatch warning:\n%s", sb.String())
	}
}

func TestCompareReportsMissingBenchmark(t *testing.T) {
	old, new := compareFixture()
	new.Benchmarks = new.Benchmarks[1:] // drop the fast-path benchmark
	var sb strings.Builder
	if n := compareReports(&sb, old, new); n != 0 {
		t.Fatalf("missing benchmark must warn, not fail: %d regressions\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "missing from new report") {
		t.Fatalf("missing-benchmark warning absent:\n%s", sb.String())
	}
}
