package main

import (
	"math"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: mpgraph/internal/prefetch
cpu: some cpu
BenchmarkOperateDeltaLSTM-8 	    2000	     71578 ns/op	       0 B/op	       0 allocs/op
BenchmarkOperateDeltaLSTM-8 	    2000	     72000 ns/op	       0 B/op	       0 allocs/op
BenchmarkOperateDeltaLSTMLegacy-8 	    2000	    143578 ns/op	  512000 B/op	    1200 allocs/op
PASS
ok  	mpgraph/internal/prefetch	3.375s
pkg: mpgraph/internal/experiments
BenchmarkPrefetchSweepSerial 	       1	1717870046 ns/op
BenchmarkPrefetchSweepLegacySerial 	       1	3685844300 ns/op
ok  	mpgraph/internal/experiments	14.201s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(results))
	}
	first := results[0]
	if first.Pkg != "mpgraph/internal/prefetch" {
		t.Fatalf("pkg = %q", first.Pkg)
	}
	if first.Name != "BenchmarkOperateDeltaLSTM" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", first.Name)
	}
	if first.Iters != 2000 || first.NsPerOp != 71578 {
		t.Fatalf("iters/ns = %d/%g", first.Iters, first.NsPerOp)
	}
	legacy := results[2]
	if legacy.BytesPerOp != 512000 || legacy.AllocsPerOp != 1200 {
		t.Fatalf("B/allocs = %d/%d", legacy.BytesPerOp, legacy.AllocsPerOp)
	}
	sweep := results[3]
	if sweep.Pkg != "mpgraph/internal/experiments" {
		t.Fatalf("sweep pkg = %q", sweep.Pkg)
	}
	if sweep.BytesPerOp != 0 || sweep.AllocsPerOp != 0 {
		t.Fatalf("missing B/op fields must stay zero, got %d/%d", sweep.BytesPerOp, sweep.AllocsPerOp)
	}
}

func TestPairSpeedups(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	sp := pairSpeedups(results)
	if len(sp) != 2 {
		t.Fatalf("got %d speedup pairs, want 2", len(sp))
	}
	// The two DeltaLSTM runs average to 71789 ns/op before pairing.
	lstm := sp[0]
	if lstm.Name != "OperateDeltaLSTM" {
		t.Fatalf("pair name = %q", lstm.Name)
	}
	if math.Abs(lstm.FastNs-71789) > 1 {
		t.Fatalf("fast ns = %g, want ~71789", lstm.FastNs)
	}
	if math.Abs(lstm.Speedup-143578.0/71789.0) > 1e-9 {
		t.Fatalf("speedup = %g", lstm.Speedup)
	}
	sweep := sp[1]
	if sweep.Name != "PrefetchSweepSerial" {
		t.Fatalf("pair name = %q", sweep.Name)
	}
	if sweep.Speedup < 2 {
		t.Fatalf("sample sweep speedup = %g, want > 2", sweep.Speedup)
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkBroken 12 fast\n"))
	if err == nil {
		t.Fatal("malformed benchmark line must error")
	}
}
