// Command mpgraph-bench converts `go test -bench` text output into a small
// machine-readable JSON report (BENCH_small.json) so CI can archive
// benchmark results and the fast-path speedup claims in DESIGN.md stay
// reproducible from a committed artifact.
//
// Benchmarks whose name contains "Legacy" are paired with the benchmark
// named by deleting that substring (BenchmarkOperateDeltaLSTMLegacy pairs
// with BenchmarkOperateDeltaLSTM, BenchmarkPrefetchSweepLegacySerial with
// BenchmarkPrefetchSweepSerial) and reported as a speedup ratio
// legacy/fast in the "speedups" section.
//
// Usage:
//
//	go test ./... -bench . -benchtime 1x -run xxx | mpgraph-bench -o BENCH_small.json
//	mpgraph-bench -in bench.txt -o BENCH_small.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Speedup reports a Legacy/fast benchmark pair as a wall-time ratio.
type Speedup struct {
	Name     string  `json:"name"`
	FastNs   float64 `json:"fast_ns_per_op"`
	LegacyNs float64 `json:"legacy_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// Report is the BENCH_small.json document.
type Report struct {
	Benchmarks []Result  `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups"`
}

func main() {
	var (
		in  = flag.String("in", "", "bench output file (default stdin)")
		out = flag.String("o", "BENCH_small.json", "output JSON path")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}

	results, err := parseBench(r)
	if err != nil {
		fatalf("%v", err)
	}
	if len(results) == 0 {
		fatalf("no benchmark lines found in input")
	}

	report := Report{Benchmarks: results, Speedups: pairSpeedups(results)}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("encode report: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "mpgraph-bench: wrote %s (%d benchmarks, %d speedup pairs)\n",
		*out, len(report.Benchmarks), len(report.Speedups))
}

// parseBench extracts benchmark result lines, tracking the enclosing
// package from the `pkg:` header lines `go test` prints.
func parseBench(r io.Reader) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		// `ok <pkg> <time>` trailers also carry the package, covering
		// inputs where -bench output was filtered down to result lines.
		if rest, ok := strings.CutPrefix(line, "ok "); ok {
			if f := strings.Fields(rest); len(f) > 0 {
				pkg = f[0]
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(pkg, line)
		if !ok {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// parseBenchLine parses one `Benchmark<Name>[-P] <iters> <ns> ns/op
// [<B> B/op] [<allocs> allocs/op]` line.
func parseBenchLine(pkg, line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix when present.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Pkg: pkg, Name: name, Iters: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return res, true
}

// pairSpeedups matches each Legacy benchmark with its fast counterpart.
// Repeated -count runs are averaged per name before pairing.
func pairSpeedups(results []Result) []Speedup {
	type agg struct {
		sum float64
		n   int
	}
	mean := map[string]*agg{}
	var order []string
	for _, r := range results {
		a := mean[r.Name]
		if a == nil {
			a = &agg{}
			mean[r.Name] = a
			order = append(order, r.Name)
		}
		a.sum += r.NsPerOp
		a.n++
	}
	var out []Speedup
	for _, name := range order {
		if !strings.Contains(name, "Legacy") {
			continue
		}
		fastName := strings.Replace(name, "Legacy", "", 1)
		fast, ok := mean[fastName]
		if !ok {
			continue
		}
		legacyNs := mean[name].sum / float64(mean[name].n)
		fastNs := fast.sum / float64(fast.n)
		if fastNs <= 0 {
			continue
		}
		out = append(out, Speedup{
			Name:     strings.TrimPrefix(fastName, "Benchmark"),
			FastNs:   fastNs,
			LegacyNs: legacyNs,
			Speedup:  legacyNs / fastNs,
		})
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpgraph-bench: "+format+"\n", args...)
	os.Exit(1)
}
