// Command mpgraph-bench converts `go test -bench` text output into a small
// machine-readable JSON report (BENCH_small.json) so CI can archive
// benchmark results and the fast-path speedup claims in DESIGN.md stay
// reproducible from a committed artifact.
//
// Two variant-suffix conventions drive the "speedups" section. Benchmarks
// whose name contains "Legacy" are paired with the benchmark named by
// deleting that substring (BenchmarkOperateDeltaLSTMLegacy pairs with
// BenchmarkOperateDeltaLSTM) and reported as legacy/fast. Benchmarks whose
// name contains "Int8" are paired the same way (BenchmarkOperateMPGraphAMMAInt8
// pairs with BenchmarkOperateMPGraphAMMA) and reported as float/int8 — in
// both cases the ratio is baseline over variant, so >1 means the fast or
// quantized path wins.
//
// The report header records the measurement environment (go version, OS,
// architecture, GOMAXPROCS, CPU count) so consumers can tell when two
// reports were taken on different machines.
//
// Compare mode turns the report into a CI perf gate:
//
//	mpgraph-bench -compare old.json new.json
//
// exits non-zero when any fast-path benchmark (name without "Legacy")
// regresses more than 15% in ns/op or gains allocations. When the two
// reports' environments differ, ns/op is not comparable and only the
// allocation check is enforced (with a warning).
//
// Usage:
//
//	go test ./... -bench . -benchtime 1x -run xxx | mpgraph-bench -o BENCH_small.json
//	mpgraph-bench -in bench.txt -o BENCH_small.json
//	mpgraph-bench -compare BENCH_small.json BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Speedup reports a baseline/variant benchmark pair as a wall-time ratio:
// legacy vs fast-path for "Legacy" names, float vs quantized for "Int8"
// names. BaseNs is the baseline (legacy or float), FastNs the variant.
type Speedup struct {
	Name    string  `json:"name"`
	FastNs  float64 `json:"fast_ns_per_op"`
	BaseNs  float64 `json:"base_ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// Env captures the machine and runtime configuration a report was measured
// under. Two reports with different Envs have incomparable ns/op numbers.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

func currentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Report is the BENCH_small.json document.
type Report struct {
	Env        Env       `json:"env"`
	Benchmarks []Result  `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups"`
}

func main() {
	var (
		in      = flag.String("in", "", "bench output file (default stdin)")
		out     = flag.String("o", "BENCH_small.json", "output JSON path")
		compare = flag.Bool("compare", false, "compare two report files (old new); exit non-zero on fast-path regressions")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("-compare needs exactly two arguments: old.json new.json")
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			fatalf("%v", err)
		}
		if n := compareReports(os.Stderr, oldRep, newRep); n > 0 {
			fatalf("%d benchmark regression(s) against %s", n, flag.Arg(0))
		}
		fmt.Fprintf(os.Stderr, "mpgraph-bench: no regressions against %s\n", flag.Arg(0))
		return
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}

	results, err := parseBench(r)
	if err != nil {
		fatalf("%v", err)
	}
	if len(results) == 0 {
		fatalf("no benchmark lines found in input")
	}

	collapsed := collapse(results)
	report := Report{Env: currentEnv(), Benchmarks: collapsed, Speedups: pairSpeedups(collapsed)}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("encode report: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "mpgraph-bench: wrote %s (%d benchmarks, %d speedup pairs)\n",
		*out, len(report.Benchmarks), len(report.Speedups))
}

// loadReport reads one JSON report written by a previous run.
func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// collapse merges repeated `-count` runs of the same benchmark into one
// entry. ns/op takes the best run: timing noise (scheduler steal, frequency
// dips, cache pollution from a co-tenant) only ever slows a run down, so
// min-of-N estimates the true cost far more stably than a mean — which
// matters on the single-core VMs the compare gate runs on. Allocation and
// byte counts take the worst run — the fast path promises zero allocs on
// every run, not on average — and iterations are summed.
func collapse(results []Result) []Result {
	index := map[string]int{}
	var out []Result
	for _, r := range results {
		key := r.Pkg + " " + r.Name
		i, ok := index[key]
		if !ok {
			index[key] = len(out)
			out = append(out, r)
			continue
		}
		a := &out[i]
		a.Iters += r.Iters
		if r.NsPerOp < a.NsPerOp {
			a.NsPerOp = r.NsPerOp
		}
		if r.BytesPerOp > a.BytesPerOp {
			a.BytesPerOp = r.BytesPerOp
		}
		if r.AllocsPerOp > a.AllocsPerOp {
			a.AllocsPerOp = r.AllocsPerOp
		}
	}
	return out
}

// regressionThreshold is how much slower (ns/op) a fast-path benchmark may
// get before the compare gate fails. Allocation gains have no threshold:
// the fast path promises zero allocs, so any gain is a regression.
const regressionThreshold = 1.15

// compareReports checks every fast-path benchmark of old against new,
// writing one line per finding, and returns the regression count. Legacy
// baselines are exempt (they are the slow path by design). A benchmark
// missing from new is reported but not failed — suites evolve — while an
// environment mismatch downgrades the gate to allocation checks only,
// because ns/op measured on different machines is noise.
func compareReports(w io.Writer, old, new Report) int {
	sameEnv := old.Env == new.Env
	if !sameEnv {
		fmt.Fprintf(w, "mpgraph-bench: environment mismatch (old %+v, new %+v); enforcing allocation checks only\n",
			old.Env, new.Env)
	}
	index := map[string]Result{}
	for _, r := range new.Benchmarks {
		index[r.Pkg+" "+r.Name] = r
	}
	regressions := 0
	for _, o := range old.Benchmarks {
		if strings.Contains(o.Name, "Legacy") {
			continue
		}
		n, ok := index[o.Pkg+" "+o.Name]
		if !ok {
			fmt.Fprintf(w, "mpgraph-bench: %s missing from new report (not failed)\n", o.Name)
			continue
		}
		if n.AllocsPerOp > o.AllocsPerOp {
			fmt.Fprintf(w, "mpgraph-bench: REGRESSION %s allocs/op %d -> %d\n", o.Name, o.AllocsPerOp, n.AllocsPerOp)
			regressions++
		}
		if sameEnv && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*regressionThreshold {
			fmt.Fprintf(w, "mpgraph-bench: REGRESSION %s ns/op %.0f -> %.0f (+%.1f%%)\n",
				o.Name, o.NsPerOp, n.NsPerOp, 100*(n.NsPerOp/o.NsPerOp-1))
			regressions++
		}
	}
	return regressions
}

// parseBench extracts benchmark result lines, tracking the enclosing
// package from the `pkg:` header lines `go test` prints.
func parseBench(r io.Reader) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		// `ok <pkg> <time>` trailers also carry the package, covering
		// inputs where -bench output was filtered down to result lines.
		if rest, ok := strings.CutPrefix(line, "ok "); ok {
			if f := strings.Fields(rest); len(f) > 0 {
				pkg = f[0]
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(pkg, line)
		if !ok {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// parseBenchLine parses one `Benchmark<Name>[-P] <iters> <ns> ns/op
// [<B> B/op] [<allocs> allocs/op]` line.
func parseBenchLine(pkg, line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix when present.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Pkg: pkg, Name: name, Iters: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return res, true
}

// pairSpeedups matches each variant-suffixed benchmark with its counterpart.
// "Legacy" names are the baseline and pair with the name minus the substring
// (the fast side); "Int8" names are the variant and pair with the name minus
// the substring (the float baseline). Callers pass collapsed results (one
// entry per name); any repeats still present are averaged before pairing.
func pairSpeedups(results []Result) []Speedup {
	type agg struct {
		sum float64
		n   int
	}
	mean := map[string]*agg{}
	var order []string
	for _, r := range results {
		a := mean[r.Name]
		if a == nil {
			a = &agg{}
			mean[r.Name] = a
			order = append(order, r.Name)
		}
		a.sum += r.NsPerOp
		a.n++
	}
	avg := func(a *agg) float64 { return a.sum / float64(a.n) }
	var out []Speedup
	for _, name := range order {
		var baseNs, fastNs float64
		var pairName string
		switch {
		case strings.Contains(name, "Legacy"):
			// The suffixed benchmark is the slow baseline.
			fastName := strings.Replace(name, "Legacy", "", 1)
			fast, ok := mean[fastName]
			if !ok {
				continue
			}
			baseNs, fastNs = avg(mean[name]), avg(fast)
			pairName = fastName
		case strings.Contains(name, "Int8"):
			// The suffixed benchmark is the quantized variant; the
			// unsuffixed one is the float baseline.
			baseName := strings.Replace(name, "Int8", "", 1)
			base, ok := mean[baseName]
			if !ok {
				continue
			}
			baseNs, fastNs = avg(base), avg(mean[name])
			pairName = name
		case strings.Contains(name, "F32"):
			// Mixed-precision compute tier: the suffixed benchmark is the
			// f32 variant, the unsuffixed one the float64 baseline.
			baseName := strings.Replace(name, "F32", "", 1)
			base, ok := mean[baseName]
			if !ok {
				continue
			}
			baseNs, fastNs = avg(base), avg(mean[name])
			pairName = name
		case strings.Contains(name, "F16"):
			// Half-precision storage tier: pairs the f16 suite serialisation
			// with its float64 counterpart.
			baseName := strings.Replace(name, "F16", "", 1)
			base, ok := mean[baseName]
			if !ok {
				continue
			}
			baseNs, fastNs = avg(base), avg(mean[name])
			pairName = name
		default:
			continue
		}
		if fastNs <= 0 {
			continue
		}
		out = append(out, Speedup{
			Name:    strings.TrimPrefix(pairName, "Benchmark"),
			FastNs:  fastNs,
			BaseNs:  baseNs,
			Speedup: baseNs / fastNs,
		})
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpgraph-bench: "+format+"\n", args...)
	os.Exit(1)
}
