// Command mpgraph-experiments regenerates the paper's tables and figures
// (DESIGN.md §4 maps each experiment id to its runner).
//
// Usage:
//
//	mpgraph-experiments -list
//	mpgraph-experiments -run all
//	mpgraph-experiments -run table4,fig12 -datasets rmat,wiki -apps pr,cc
//	mpgraph-experiments -run fig12 -scale paper
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpgraph/internal/experiments"
	"mpgraph/internal/frameworks"
	"mpgraph/internal/resilience"
)

type runner struct {
	id, desc string
	fn       func(io.Writer, *experiments.Runner) error
}

var registry = []runner{
	{"table1", "Benchmark frameworks and applications", experiments.TableFrameworks},
	{"table2", "Graph datasets", experiments.TableDatasets},
	{"table3", "Simulation parameters", experiments.TableSimParams},
	{"fig2", "PCA of accesses and PCs per phase", experiments.FigurePCA},
	{"fig3", "Page jumps in GPOP", experiments.FigurePageJumps},
	{"table4", "Phase detection P/R/F1", experiments.TablePhaseDetection},
	{"fig9", "Phase detection case study", experiments.FigureCaseStudy},
	{"table5", "AMMA configuration", experiments.TableAMMAConfig},
	{"table6", "Spatial delta prediction F1", experiments.TableDeltaPrediction},
	{"table7", "Temporal page prediction accuracy@10", experiments.TablePagePrediction},
	{"fig10", "Prefetch accuracy", experiments.FigurePrefetchAccuracy},
	{"fig11", "Prefetch coverage", experiments.FigurePrefetchCoverage},
	{"fig12", "IPC improvement", experiments.FigureIPC},
	{"fig13", "Knowledge distillation under compression", experiments.FigureDistillation},
	{"fig14", "Distance prefetching vs inference latency", experiments.FigureDistancePrefetch},
	{"table8", "Computational complexity", experiments.TableComplexity},
	{"ablation-cstp", "CSTP chaining ablation", experiments.AblationCSTP},
	{"ablation-phase", "Phase handling ablation", experiments.AblationPhases},
	{"ablation-percore", "Per-core detection (async extension)", experiments.AblationPerCore},
	{"extended", "Extended rule-based baselines", experiments.TableExtendedBaselines},
}

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale      = flag.String("scale", "small", "experiment scale: small | paper")
		datasets   = flag.String("datasets", "", "comma-separated dataset names (default per scale)")
		apps       = flag.String("apps", "", "comma-separated apps filter (bfs,cc,pr,sssp,tc)")
		graphScale = flag.Int("graph-scale", 0, "log2 vertices override")
		seed       = flag.Int64("seed", 1, "experiment seed")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
		slowInfer  = flag.Bool("disable-fast-path", false, "use the legacy allocating inference path (serial; perf baseline)")
		int8Infer  = flag.Bool("int8", false, "run MPGraph inference on the int8 quantized engine (per-channel weights, calibrated activations)")
		f32Infer   = flag.Bool("f32", false, "run MPGraph inference on the single-precision compute tier (weights narrowed once, f32 fused kernels)")
		batch      = flag.Int("batch", 0, "fuse up to N concurrent ML model calls per batched GEMM round (0 = off; reports are byte-identical at any value)")
		out        = flag.String("out", "", "output file (default stdout)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for atomic checksummed trace/model checkpoints (empty = disabled)")
		resume     = flag.Bool("resume", false, "load matching checkpoints from -checkpoint-dir before recomputing")
		inject     = flag.String("inject", "", "fault-injection spec, e.g. 'sweep-worker:panic@2,checkpoint-io:corrupt@1' (see resilience.ParseInjector)")
		degradeLog = flag.String("degrade-log", "", "write the degradation-event log to this file (written even when a run fails)")
	)
	flag.Parse()

	if *list {
		for _, r := range registry {
			fmt.Printf("%-14s %s\n", r.id, r.desc)
		}
		return
	}

	var opt experiments.Options
	switch *scale {
	case "small":
		opt = experiments.DefaultOptions()
	case "paper":
		opt = experiments.PaperOptions()
	default:
		fatalf("unknown scale %q (small|paper)", *scale)
	}
	opt.Seed = *seed
	opt.Workers = *workers
	opt.DisableFastPath = *slowInfer
	opt.Int8 = *int8Infer
	if *int8Infer && *slowInfer {
		fatalf("-int8 requires the fast path; drop -disable-fast-path")
	}
	opt.F32 = *f32Infer
	if *f32Infer && *slowInfer {
		fatalf("-f32 requires the fast path; drop -disable-fast-path")
	}
	if *f32Infer && *int8Infer {
		fatalf("-f32 and -int8 are mutually exclusive; pick one reduced-precision engine")
	}
	opt.Batch = *batch
	if *batch > 0 && *slowInfer {
		fatalf("-batch requires the fast path; drop -disable-fast-path")
	}
	opt.CheckpointDir = *ckptDir
	opt.Resume = *resume
	inj, err := resilience.ParseInjector(*inject, *seed)
	if err != nil {
		fatalf("-inject: %v", err)
	}
	opt.Injector = inj
	if *graphScale > 0 {
		opt.GraphScale = *graphScale
	}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}
	if *apps != "" {
		for _, a := range strings.Split(*apps, ",") {
			opt.Apps = append(opt.Apps, frameworks.App(strings.TrimSpace(a)))
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	wanted := map[string]bool{}
	if *run != "all" {
		for _, id := range strings.Split(*run, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
		for id := range wanted {
			if !known(id) {
				fatalf("unknown experiment %q (use -list)", id)
			}
		}
	}

	r := experiments.NewRunner(opt)
	var runErr error
	for _, reg := range registry {
		if *run != "all" && !wanted[reg.id] {
			continue
		}
		fmt.Fprintf(os.Stderr, "[mpgraph-experiments] running %s (%s)...\n", reg.id, reg.desc)
		if err := reg.fn(w, r); err != nil {
			runErr = fmt.Errorf("%s: %w", reg.id, err)
			break
		}
	}
	// The degradation log is most valuable exactly when a run failed, so it
	// is written before the error decides the exit code.
	if *degradeLog != "" {
		if err := writeDegradeLog(*degradeLog, r); err != nil {
			fatalf("-degrade-log: %v", err)
		}
	}
	if runErr != nil {
		fatalf("%v", runErr)
	}
}

// writeDegradeLog dumps the runner's degradation events (recovered panics,
// quarantined prefetchers, corrupt checkpoints, injected faults) to path.
func writeDegradeLog(path string, r *experiments.Runner) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := r.Events.WriteTo(f); err != nil {
		f.Close() //mpgraph:allow errdrop -- the write error already reports the failure
		return err
	}
	return f.Close()
}

func known(id string) bool {
	for _, r := range registry {
		if r.id == id {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpgraph-experiments: "+format+"\n", args...)
	os.Exit(1)
}
