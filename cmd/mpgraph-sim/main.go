// Command mpgraph-sim runs the prefetching simulation: it replays a trace's
// test iterations (everything after iteration 1) through the multi-core
// cache hierarchy with a chosen prefetcher and reports IPC, prefetch
// accuracy, and coverage against the no-prefetch baseline.
//
// Usage:
//
//	mpgraph-sim -trace pr.trace -prefetcher bo
//	mpgraph-sim -trace pr.trace -prefetcher mpgraph -models pr.models
package main

import (
	"flag"
	"fmt"
	"os"

	"mpgraph/internal/core"
	"mpgraph/internal/models"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/sim"
	"mpgraph/internal/trace"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "input trace from mpgraph-trace (required)")
		pfName     = flag.String("prefetcher", "bo", "none | bo | isb | mpgraph")
		modelsPath = flag.String("models", "", "model file from mpgraph-train (for -prefetcher mpgraph)")
		latency    = flag.Uint64("latency", 0, "model inference latency in cycles")
		maxAcc     = flag.Int("max-accesses", 500_000, "cap on simulated test accesses (0 = all)")
		seed       = flag.Int64("seed", 1, "detector seed")
	)
	flag.Parse()
	if *tracePath == "" {
		fatalf("need -trace")
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatalf("%v", err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatalf("read trace: %v", err)
	}
	if tr.NumIterations() < 2 {
		fatalf("trace needs at least 2 iterations (1 train + tests)")
	}
	_, hi, err := tr.Iteration(0)
	if err != nil {
		fatalf("%v", err)
	}
	test := tr.Accesses[hi:]
	if *maxAcc > 0 && len(test) > *maxAcc {
		test = test[:*maxAcc]
	}

	var pf sim.Prefetcher
	switch *pfName {
	case "none":
		pf = sim.NoPrefetcher()
	case "bo":
		pf = prefetch.NewBO(prefetch.DefaultBOConfig())
	case "isb":
		pf = prefetch.NewISB(prefetch.DefaultISBConfig())
	case "mpgraph":
		if *modelsPath == "" {
			fatalf("-prefetcher mpgraph needs -models")
		}
		mf, err := os.Open(*modelsPath)
		if err != nil {
			fatalf("%v", err)
		}
		pm, err := models.LoadPrefetcherModels(mf)
		mf.Close()
		if err != nil {
			fatalf("load models: %v", err)
		}
		opt := core.DefaultOptions()
		opt.LatencyCycles = *latency
		det := phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: *seed})
		pf, err = core.New(opt, pm.Cfg.HistoryT, det, pm.DeltaModels(), pm.PageModels())
		if err != nil {
			fatalf("build mpgraph: %v", err)
		}
	default:
		fatalf("unknown prefetcher %q", *pfName)
	}

	cfg := sim.DefaultConfig()
	base, err := sim.NewEngine(cfg, nil)
	if err != nil {
		fatalf("%v", err)
	}
	mb := base.Run(test)
	eng, err := sim.NewEngine(cfg, pf)
	if err != nil {
		fatalf("%v", err)
	}
	m := eng.Run(test)

	fmt.Printf("workload:    %s/%s (%d test accesses)\n", tr.Framework, tr.App, len(test))
	fmt.Printf("baseline:    IPC=%.4f LLCmiss=%d\n", mb.IPC(), mb.LLCMisses)
	fmt.Printf("%-12s IPC=%.4f (%+.2f%%) accuracy=%.2f%% coverage=%.2f%% issued=%d useful=%d late=%d\n",
		pf.Name()+":", m.IPC(), m.IPCImprovement(mb)*100,
		m.Accuracy()*100, m.Coverage()*100,
		m.PrefetchesIssued, m.UsefulPrefetches, m.LatePrefetches)
	if mp, ok := pf.(*core.MPGraph); ok {
		fmt.Printf("mpgraph:     transitions=%d switches=%d finalPhase=%d\n",
			mp.Transitions, mp.Switches, mp.Phase())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpgraph-sim: "+format+"\n", args...)
	os.Exit(1)
}
