// Command mpgraph-serve is the long-running prefetch inference daemon
// (DESIGN.md §12): it trains or checkpoint-loads one workload's MPGraph
// suite, then serves per-session prefetch predictions over HTTP/JSONL.
//
// Usage:
//
//	mpgraph-serve -addr :8080 -workload gpop/pr/rmat -checkpoint-dir ckpt -resume
//	mpgraph-serve -replay trace.jsonl -out predictions.jsonl -batch 8 -workers 4
//
// Serving endpoints (see internal/serve):
//
//	POST   /v1/sessions/{id}/events   stream events in, predictions out
//	DELETE /v1/sessions/{id}          close a session
//	GET    /v1/stats                  server counters
//	GET    /healthz                   liveness probe
//
// SIGINT/SIGTERM triggers a graceful drain: in-flight feeds complete,
// sessions close, and (with -leak-check) the process verifies no serving
// goroutines survived before exiting 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mpgraph/internal/core"
	"mpgraph/internal/experiments"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/resilience"
	"mpgraph/internal/serve"
	"mpgraph/internal/sim"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		scale      = flag.String("scale", "small", "suite scale: small | paper")
		workload   = flag.String("workload", "gpop/pr/rmat", "workload to serve, as framework/app/dataset")
		seed       = flag.Int64("seed", 1, "training/injection seed")
		graphScale = flag.Int("graph-scale", 0, "log2 vertices override")
		traceIters = flag.Int("trace-iterations", 0, "framework super-steps to trace (0 = per-scale default)")
		trainSamps = flag.Int("train-samples", 0, "training dataset cap (0 = per-scale default)")
		epochs     = flag.Int("epochs", 0, "training epoch count (0 = per-scale default)")
		workers    = flag.Int("workers", 0, "training/replay parallelism (0 = GOMAXPROCS)")
		int8Infer  = flag.Bool("int8", false, "serve inference on the int8 quantized engine")
		f32Infer   = flag.Bool("f32", false, "serve inference on the single-precision (f32) compute tier")
		batch      = flag.Int("batch", 0, "fuse up to N concurrent sessions' model calls per batched GEMM round (0 = off)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for atomic checksummed suite checkpoints")
		resume     = flag.Bool("resume", false, "load matching checkpoints from -checkpoint-dir before training")

		maxSessions = flag.Int("max-sessions", 256, "session-table bound (admission control)")
		flushEvery  = flag.Int("flush-every", 64, "events per streamed prediction chunk")
		retryAfter  = flag.Int("retry-after", 1, "Retry-After hint (seconds) on 429/503 rejections")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-feed deadline, propagated through model calls")
		maxFeed     = flag.Int("max-feed-events", 1<<16, "per-feed (and per-replay-session) event bound")

		inject     = flag.String("inject", "", "fault-injection spec, e.g. 'serve-session:panic~0.05' (see resilience.ParseInjector)")
		degradeLog = flag.String("degrade-log", "", "write the degradation-event log to this file on exit")
		replayPath = flag.String("replay", "", "replay a JSONL trace deterministically instead of serving HTTP")
		out        = flag.String("out", "", "replay prediction-log output (default stdout)")
		leakCheck  = flag.Bool("leak-check", false, "after drain, fail if serving goroutines leaked (stack-dump check)")
	)
	flag.Parse()

	opt, err := buildOptions(*scale, *seed, *graphScale, *traceIters, *trainSamps, *epochs,
		*workers, *int8Infer, *f32Infer, *batch, *ckptDir, *resume)
	if err != nil {
		fatalf("%v", err)
	}
	inj, err := resilience.ParseInjector(*inject, *seed)
	if err != nil {
		fatalf("-inject: %v", err)
	}
	opt.Injector = inj
	w, err := experiments.ParseWorkload(*workload)
	if err != nil {
		fatalf("-workload: %v", err)
	}
	opt.Datasets = []string{w.Dataset}

	r := experiments.NewRunner(opt)
	fmt.Fprintf(os.Stderr, "[mpgraph-serve] preparing suite for %s (scale=%s int8=%v f32=%v batch=%d)...\n",
		w, opt.Scale, opt.Int8, opt.F32, opt.Batch)
	if _, err := r.Suite(w); err != nil {
		fatalf("suite: %v", err)
	}
	fmt.Fprintln(os.Stderr, "[mpgraph-serve] suite ready")

	srv, err := serve.New(serve.Config{
		MaxSessions:      *maxSessions,
		FlushEvery:       *flushEvery,
		RetryAfter:       *retryAfter,
		RequestTimeout:   *reqTimeout,
		MaxEventsPerFeed: *maxFeed,
		NewPrimary: func(sched core.ModelScheduler) (sim.Prefetcher, error) {
			copt := core.DefaultOptions()
			copt.Scheduler = sched
			return r.MPGraph(w, copt)
		},
		NewModelSession: r.NewModelSession,
		NewFallback:     func() sim.Prefetcher { return prefetch.NewBO(prefetch.DefaultBOConfig()) },
		Injector:        inj,
		Events:          r.Events,
	})
	if err != nil {
		fatalf("%v", err)
	}

	var runErr error
	if *replayPath != "" {
		runErr = runReplay(srv, *replayPath, *out, opt.Workers)
	} else {
		runErr = runDaemon(srv, *addr)
	}
	if *degradeLog != "" {
		if err := writeDegradeLog(*degradeLog, r.Events); err != nil {
			fatalf("-degrade-log: %v", err)
		}
	}
	if runErr != nil {
		fatalf("%v", runErr)
	}
	if *leakCheck {
		if err := checkLeaks(); err != nil {
			fatalf("leak-check: %v", err)
		}
		fmt.Fprintln(os.Stderr, "[mpgraph-serve] leak-check: ok")
	}
}

// buildOptions assembles the experiments configuration from the suite flags.
func buildOptions(scale string, seed int64, graphScale, traceIters, trainSamps, epochs,
	workers int, int8Infer, f32Infer bool, batch int, ckptDir string, resume bool) (experiments.Options, error) {
	var opt experiments.Options
	switch scale {
	case "small":
		opt = experiments.DefaultOptions()
	case "paper":
		opt = experiments.PaperOptions()
	default:
		return opt, fmt.Errorf("unknown scale %q (small|paper)", scale)
	}
	if int8Infer && f32Infer {
		return opt, fmt.Errorf("-f32 and -int8 are mutually exclusive; pick one reduced-precision engine")
	}
	opt.Seed = seed
	opt.Workers = workers
	opt.Int8 = int8Infer
	opt.F32 = f32Infer
	opt.Batch = batch
	opt.CheckpointDir = ckptDir
	opt.Resume = resume
	if graphScale > 0 {
		opt.GraphScale = graphScale
	}
	if traceIters > 0 {
		opt.TraceIterations = traceIters
	}
	if trainSamps > 0 {
		opt.TrainSamples = trainSamps
	}
	if epochs > 0 {
		opt.Epochs = epochs
	}
	return opt, nil
}

// runDaemon serves HTTP until SIGINT/SIGTERM, then drains gracefully.
func runDaemon(srv *serve.Server, addr string) error {
	httpSrv := &http.Server{Addr: addr, Handler: serve.NewHandler(srv)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "[mpgraph-serve] listening on %s\n", addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return fmt.Errorf("http: %w", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "[mpgraph-serve] draining...")

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	stats := srv.Stats()
	fmt.Fprintf(os.Stderr, "[mpgraph-serve] drained: %d feeds, %d events, %d predictions, %d admitted, %d rejected, %d evicted, %d degraded\n",
		stats.Feeds, stats.Events, stats.Predictions, stats.Admitted, stats.Rejected, stats.Evicted, stats.Degraded)
	return nil
}

// runReplay runs the deterministic replay mode: trace in, prediction log out.
func runReplay(srv *serve.Server, tracePath, outPath string, parallel int) error {
	in, err := os.Open(tracePath)
	if err != nil {
		return fmt.Errorf("-replay: %w", err)
	}
	defer in.Close()
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return fmt.Errorf("-out: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := serve.Replay(context.Background(), srv, in, w, parallel); err != nil {
		return err
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// checkLeaks verifies no serving goroutines survived the drain, retrying
// briefly to let exiting goroutines clear the scheduler before dumping the
// offending stacks.
func checkLeaks() error {
	var dump string
	for attempt := 0; attempt < 40; attempt++ {
		dump = goroutineDump()
		if !strings.Contains(dump, "mpgraph/internal/serve") && !strings.Contains(dump, "mpgraph/internal/prefetch") {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Fprintln(os.Stderr, dump)
	return fmt.Errorf("serving goroutines still alive after drain (stacks above)")
}

// goroutineDump returns the full goroutine stack dump.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}

// writeDegradeLog dumps the degradation-event log to path.
func writeDegradeLog(path string, events *resilience.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := events.WriteTo(f); err != nil {
		f.Close() //mpgraph:allow errdrop -- the write error already reports the failure
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpgraph-serve: "+format+"\n", args...)
	os.Exit(1)
}
