// Command mpgraph-trace executes a graph-analytics workload under one of the
// three framework execution models and writes its memory-access trace — the
// equivalent of the paper's "framework under Pin" trace-generation step.
//
// Usage:
//
//	mpgraph-trace -framework gpop -app pr -dataset rmat -scale 12 -iterations 6 -o pr.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"mpgraph/internal/frameworks"
	"mpgraph/internal/graph"
	"mpgraph/internal/trace"
)

func main() {
	var (
		framework  = flag.String("framework", "gpop", "gpop | xstream | powergraph")
		app        = flag.String("app", "pr", "bfs | cc | pr | sssp | tc")
		dataset    = flag.String("dataset", "rmat", "benchmark graph name (see Table 2)")
		scale      = flag.Int("scale", 12, "log2 vertices")
		iterations = flag.Int("iterations", 6, "super-steps to trace")
		cores      = flag.Int("cores", 4, "simulated cores")
		seed       = flag.Int64("seed", 1, "generation seed")
		out        = flag.String("o", "", "output trace file (required unless -stats)")
		statsFlag  = flag.Bool("stats", false, "print a per-phase trace summary instead of requiring -o")
	)
	flag.Parse()
	if *out == "" && !*statsFlag {
		fatalf("missing -o output path (or use -stats)")
	}

	spec, err := graph.DatasetByName(*dataset)
	if err != nil {
		fatalf("%v", err)
	}
	g, err := spec.GenerateScale(*scale)
	if err != nil {
		fatalf("generate graph: %v", err)
	}
	stats := graph.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "graph %s: %s\n", *dataset, stats)

	fw, err := frameworks.ByName(*framework)
	if err != nil {
		fatalf("%v", err)
	}
	tr, res, err := fw.Run(g, frameworks.App(*app), frameworks.Options{
		Cores:         *cores,
		MaxIterations: *iterations,
		Seed:          *seed,
	})
	if err != nil {
		fatalf("run workload: %v", err)
	}
	fmt.Fprintf(os.Stderr, "trace: %d accesses, %d iterations, converged=%v\n",
		len(tr.Accesses), res.Iterations, res.Converged)
	if *statsFlag {
		trace.Summarize(tr).Print(os.Stdout)
	}
	if *out == "" {
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("create %s: %v", *out, err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		fatalf("write trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpgraph-trace: "+format+"\n", args...)
	os.Exit(1)
}
